"""Tests for the workload-trace subsystem (S14).

Covers the canonical model's edge cases (unsorted rows, duplicate
timestamps, zero/negative SLOs, empty traces), the three file formats,
calibration onto the JobSpec catalogue (including the exact-identity
mapping for catalogue classes and the unknown-class error), the
synthesizer's scaling laws, the committed sample files' determinism,
and the capture -> replay round-trip guarantee on a seeded service
run.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.errors import ConfigError, TraceError
from repro.service import (
    MoonService,
    ServiceConfig,
    default_catalog,
    poisson_arrivals,
    sleep_catalog,
)
from repro.workload_traces import (
    CalibrationConfig,
    SynthesisConfig,
    TraceJob,
    WorkloadTrace,
    calibrate_job,
    capture_trace,
    fit_trace,
    load_workload_trace,
    sample_google_trace,
    sample_hadoop_trace,
    save_google_csv,
    save_hadoop_json,
    save_workload_json,
    synthesize,
    trace_arrivals,
    write_samples,
)

HOUR = 3600.0
DATA_DIR = pathlib.Path(__file__).parent.parent / "benchmarks" / "data"


def job(t=0.0, tenant="a", cls="sleep-interactive", maps=4, reduces=2,
        block_mb=0.0, map_s=30.0, reduce_s=10.0, slo=600.0):
    return TraceJob(
        arrival_time=t, tenant=tenant, job_class=cls, n_maps=maps,
        n_reduces=reduces, block_mb=block_mb, map_seconds=map_s,
        reduce_seconds=reduce_s, slo_seconds=slo,
    )


class TestModel:
    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError, match="empty"):
            WorkloadTrace.build([])

    @pytest.mark.parametrize("slo", [0.0, -60.0])
    def test_zero_or_negative_slo_rejected(self, slo):
        with pytest.raises(TraceError, match="slo_seconds"):
            job(slo=slo).validate()

    def test_no_slo_is_allowed(self):
        job(slo=None).validate()

    def test_bad_fields_rejected(self):
        with pytest.raises(TraceError):
            job(t=-1.0).validate()
        with pytest.raises(TraceError):
            job(maps=0).validate()
        with pytest.raises(TraceError):
            job(reduces=-1).validate()
        with pytest.raises(TraceError):
            job(tenant="").validate()
        with pytest.raises(TraceError):
            job(block_mb=-4.0).validate()

    def test_unsorted_input_is_stably_sorted(self):
        trace = WorkloadTrace.build(
            [job(t=50.0, tenant="late"), job(t=10.0, tenant="early")]
        )
        assert [j.tenant for j in trace.jobs] == ["early", "late"]

    def test_duplicate_timestamps_keep_input_order(self):
        trace = WorkloadTrace.build(
            [job(t=30.0, tenant="first"), job(t=30.0, tenant="second"),
             job(t=10.0, tenant="zero"), job(t=30.0, tenant="third")]
        )
        assert [j.tenant for j in trace.jobs] == [
            "zero", "first", "second", "third"
        ]

    def test_explicit_horizon_may_precede_late_arrivals(self):
        # Offered load past the admission window stays in the trace
        # (it replays as DROPPED); only the horizon's sign is checked.
        trace = WorkloadTrace.build([job(t=100.0)], horizon=50.0)
        assert trace.horizon == 50.0
        with pytest.raises(TraceError, match="positive"):
            WorkloadTrace.build([job(t=100.0)], horizon=0.0)

    def test_summary_stats(self):
        trace = WorkloadTrace.build(
            [job(t=0.0, cls="sleep-interactive", slo=600.0),
             job(t=600.0, cls="sleep-batch", tenant="b", slo=None)],
            horizon=HOUR,
        )
        s = trace.summary()
        assert s.n_jobs == 2 and s.n_tenants == 2
        assert s.class_counts == {"sleep-interactive": 1, "sleep-batch": 1}
        assert s.rate_per_hour == pytest.approx(2.0)
        assert s.slo_fraction == pytest.approx(0.5)
        assert "workload trace" in s.render()


class TestIo:
    def test_canonical_json_roundtrip_is_exact(self, tmp_path):
        trace = sample_google_trace()
        path = tmp_path / "t.json"
        save_workload_json(path, trace)
        again = load_workload_trace(path)
        assert again.jobs == trace.jobs
        assert again.horizon == trace.horizon
        assert again.pattern == trace.pattern

    def test_google_csv_roundtrip(self, tmp_path):
        trace = sample_google_trace()
        path = tmp_path / "t.csv"
        save_google_csv(path, trace)
        again = load_workload_trace(path)
        assert len(again) == len(trace)
        for a, b in zip(again.jobs, trace.jobs):
            assert (a.tenant, a.job_class, a.n_maps, a.n_reduces) == (
                b.tenant, b.job_class, b.n_maps, b.n_reduces
            )
            assert a.arrival_time == pytest.approx(b.arrival_time, abs=1e-5)
            assert a.input_mb == pytest.approx(b.input_mb)

    def test_google_csv_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2,3\n")
        with pytest.raises(TraceError, match="bad.csv:1"):
            load_workload_trace(path)

    def test_google_csv_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# format=google-cluster-jobs version=1\n")
        with pytest.raises(TraceError, match="empty"):
            load_workload_trace(path)

    def test_hadoop_json_normalises_to_earliest_submit(self, tmp_path):
        trace = sample_hadoop_trace()
        path = tmp_path / "t.json"
        save_hadoop_json(path, trace)
        again = load_workload_trace(path)
        assert len(again) == len(trace)
        assert again.jobs[0].arrival_time == 0.0
        # Relative spacing survives the epoch shift (ms precision).
        base = trace.jobs[0].arrival_time
        for a, b in zip(again.jobs, trace.jobs):
            assert a.arrival_time == pytest.approx(
                b.arrival_time - base, abs=2e-3
            )

    def test_hadoop_json_malformed_entry(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"jobs": [{"user": "x"}]}')
        with pytest.raises(TraceError, match="malformed"):
            load_workload_trace(path)

    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{nope")
        with pytest.raises(TraceError, match="not valid JSON"):
            load_workload_trace(path)


class TestCalibration:
    def test_catalog_classes_roundtrip_to_equal_specs(self):
        """Capture's field set rebuilds the service-catalogue specs
        exactly — the foundation of the replay round-trip guarantee."""
        for cls in default_catalog() + sleep_catalog():
            spec = cls.spec
            row = TraceJob(
                arrival_time=0.0, tenant="t", job_class=spec.name,
                n_maps=spec.n_maps, n_reduces=spec.n_reduces or 0,
                block_mb=spec.map_input_mb,
                map_seconds=spec.map_cpu_seconds,
                reduce_seconds=spec.reduce_cpu_seconds, slo_seconds=60.0,
            )
            assert calibrate_job(row) == spec, spec.name

    def test_slot_derived_reduces_roundtrip(self):
        """n_reduces=0 means slot-derived: capture of a
        sleep_like_sort / default-sort spec rebuilds the slot-derived
        sizing, not a zero-reduce job."""
        from repro.workloads import sleep_like_sort, sort_spec

        for spec in (sleep_like_sort(n_maps=16), sort_spec(n_maps=16)):
            row = TraceJob(
                arrival_time=0.0, tenant="t", job_class=spec.name,
                n_maps=spec.n_maps, n_reduces=spec.n_reduces or 0,
                block_mb=spec.map_input_mb,
                map_seconds=spec.map_cpu_seconds,
                reduce_seconds=spec.reduce_cpu_seconds, slo_seconds=None,
            )
            rebuilt = calibrate_job(row)
            assert rebuilt == spec, spec.name
            assert rebuilt.n_reduces is None
            assert rebuilt.reduces_per_slot == 0.9

    def test_unknown_job_class(self):
        with pytest.raises(TraceError, match="unknown job class 'pagerank'"):
            calibrate_job(job(cls="pagerank"))

    def test_sleep_variants_fall_back_to_sleep_builder(self):
        spec = calibrate_job(job(cls="sleep-adhoc"))
        assert spec.name == "sleep-adhoc"
        assert spec.map_input_mb == 0.0

    def test_caps_preserve_total_compute(self):
        row = job(cls="word count", maps=640, reduces=64,
                  block_mb=2.0, map_s=10.0, reduce_s=8.0)
        spec = calibrate_job(
            row, CalibrationConfig(max_maps=64, max_reduces=16)
        )
        assert spec.n_maps == 64 and spec.n_reduces == 16
        # 10x fewer maps -> 10x longer maps; total input preserved.
        assert spec.map_cpu_seconds == pytest.approx(100.0)
        assert spec.reduce_cpu_seconds == pytest.approx(32.0)
        assert spec.input_mb == pytest.approx(1280.0)

    def test_time_scale(self):
        spec = calibrate_job(
            job(map_s=30.0, reduce_s=10.0),
            CalibrationConfig(time_scale=0.5),
        )
        assert spec.map_cpu_seconds == pytest.approx(15.0)
        assert spec.reduce_cpu_seconds == pytest.approx(5.0)

    def test_trace_arrivals_deadlines_and_duplicate_order(self):
        trace = WorkloadTrace.build(
            [job(t=30.0, tenant="first", slo=600.0),
             job(t=30.0, tenant="second", slo=None)]
        )
        arrivals = trace_arrivals(trace)
        assert [a.tenant for a in arrivals] == ["first", "second"]
        assert arrivals[0].deadline == 630.0
        assert arrivals[1].deadline is None


class TestSynthesize:
    def test_deterministic_given_seed(self):
        base = sample_google_trace()
        a = synthesize(base, np.random.default_rng(5))
        b = synthesize(base, np.random.default_rng(5))
        assert a.jobs == b.jobs
        assert a.jobs != synthesize(base, np.random.default_rng(6)).jobs

    def test_load_factor_scales_the_rate(self):
        base = sample_hadoop_trace()
        flat = synthesize(base, np.random.default_rng(1))
        heavy = synthesize(
            base, np.random.default_rng(1),
            SynthesisConfig(load_factor=4.0),
        )
        assert heavy.horizon == base.horizon
        # 4x the rate of the same fitted law, +/- sampling noise.
        ratio = len(heavy) / len(flat)
        assert 2.5 < ratio < 6.0
        assert heavy.name.endswith("-x4")

    def test_horizon_factor_stretches(self):
        base = sample_hadoop_trace()
        longer = synthesize(
            base, np.random.default_rng(1),
            SynthesisConfig(horizon_factor=2.0),
        )
        assert longer.horizon == pytest.approx(2 * base.horizon)
        assert longer.jobs[-1].arrival_time > base.horizon

    def test_tenant_weights_perturb_the_mix(self):
        base = sample_google_trace()
        skewed = synthesize(
            base, np.random.default_rng(2),
            SynthesisConfig(load_factor=6.0,
                            tenant_weights={"alice": 20.0}),
        )
        alice = sum(1 for j in skewed.jobs if j.tenant == "alice")
        assert alice > 0.7 * len(skewed)

    def test_jobs_are_bootstrapped_from_source_classes(self):
        base = sample_google_trace()
        synth = synthesize(base, np.random.default_rng(3))
        assert set(j.job_class for j in synth.jobs) <= set(
            base.job_classes()
        )
        for j in synth.jobs:  # every job calibrates
            calibrate_job(j)

    def test_unknown_family_rejected(self):
        base = sample_google_trace()
        with pytest.raises(TraceError, match="not fitted"):
            synthesize(base, np.random.default_rng(1),
                       SynthesisConfig(family="zipf"))

    def test_fit_exposes_mixes(self):
        fit = fit_trace(sample_google_trace())
        assert fit.best_family.name
        assert sum(fit.class_mix.values()) == pytest.approx(1.0)
        assert sum(fit.tenant_mix.values()) == pytest.approx(1.0)

    def test_tiny_trace_falls_back_to_exponential(self):
        tiny = WorkloadTrace.build([job(t=0.0), job(t=60.0)], horizon=HOUR)
        fit = fit_trace(tiny)
        assert fit.best_family.name == "exponential"
        synthesize(tiny, np.random.default_rng(1))

    def test_bad_config_rejected(self):
        with pytest.raises(TraceError):
            SynthesisConfig(load_factor=0.0).validate()
        with pytest.raises(TraceError):
            SynthesisConfig(horizon_factor=-1.0).validate()

    def test_infinite_moment_fit_falls_back_to_exponential(self):
        # A Pareto fit with tail exponent <= 2 has sigma = inf; the
        # sampler must fall back to exponential at the *fitted* mean.
        from repro.traces.distributions import ExponentialOutages
        from repro.traces.fitting import FitResult
        from repro.workload_traces.synthesize import (
            TraceFit,
            _gap_distribution,
        )

        fit = TraceFit(
            inter_arrival=[
                FitResult("pareto", 30.0, float("inf"), 0.0, 2),
                FitResult("exponential", 45.0, 45.0, -1.0, 1),
            ]
        )
        dist = _gap_distribution(fit, SynthesisConfig(load_factor=2.0))
        assert isinstance(dist, ExponentialOutages)
        assert dist.mean == pytest.approx(15.0)  # fitted mean / load


class TestSamples:
    def test_committed_samples_match_regeneration(self, tmp_path):
        """The bundled trace files are a pure function of their seeds."""
        fresh = write_samples(tmp_path)
        for path in fresh:
            name = pathlib.Path(path).name
            committed = DATA_DIR / name
            assert committed.exists(), f"missing benchmarks/data/{name}"
            assert committed.read_bytes() == pathlib.Path(
                path
            ).read_bytes(), f"{name} drifted from its generator"

    def test_samples_load_and_calibrate(self):
        for name in ("google_cluster_sample.csv",
                     "hadoop_jobhistory_sample.json"):
            trace = load_workload_trace(DATA_DIR / name)
            arrivals = trace_arrivals(trace)
            assert len(arrivals) == len(trace) > 0

    def test_generators_valid_for_arbitrary_seeds(self):
        # Gap accumulation may overshoot the nominal horizon; the
        # generator must widen it, not raise, whatever the seed.
        for seed in range(20):
            assert len(sample_google_trace(seed=seed)) == 32
            assert len(sample_hadoop_trace(seed=seed)) == 28


def _service_system(seed=17):
    return moon_system(
        SystemConfig(
            cluster=ClusterConfig(n_volatile=8, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=0.2),
            scheduler=moon_scheduler_config(),
            seed=seed,
        )
    )


def _service_cfg(**kw):
    return ServiceConfig(
        policy="edf", max_in_flight=2, max_queue_depth=32,
        horizon=HOUR, drain_limit=2 * HOUR, **kw,
    )


class TestCaptureReplayRoundTrip:
    def test_replay_reproduces_the_report_byte_for_byte(self):
        """The tentpole guarantee: capture a seeded live run, replay
        the captured trace on a fresh system with the same seed, and
        get the same per-job response times and the same rendered
        ServiceReport, byte for byte."""
        system = _service_system()
        arrivals = poisson_arrivals(
            system.sim.rng("service/arrivals"),
            rate_per_hour=14.0, horizon=HOUR, catalog=sleep_catalog(),
        )
        service = MoonService(
            system, _service_cfg(capture=True), arrivals, pattern="poisson"
        )
        original = service.run()
        system.jobtracker.stop()
        system.namenode.stop()
        captured = service.captured_trace
        assert captured is not None and len(captured) == len(arrivals)
        assert captured.pattern == "poisson"

        replay_system = _service_system()
        replay = MoonService(
            replay_system,
            _service_cfg(),
            trace_arrivals(captured),
            pattern=captured.pattern,
        ).run()
        replay_system.jobtracker.stop()
        replay_system.namenode.stop()

        assert [r.response_time for r in replay.records] == [
            r.response_time for r in original.records
        ]
        assert replay.render() == original.render()

    def test_captured_arrivals_equal_originals(self):
        """Calibration inverts capture exactly for catalogue jobs —
        the replayed JobArrival list is *equal* to the original."""
        system = _service_system(seed=23)
        arrivals = poisson_arrivals(
            system.sim.rng("service/arrivals"),
            rate_per_hour=10.0, horizon=HOUR,
            catalog=default_catalog(block_mb=4.0),
        )
        service = MoonService(
            system, _service_cfg(), arrivals, pattern="poisson"
        )
        captured = capture_trace(service, name="roundtrip")
        assert trace_arrivals(captured) == sorted(
            arrivals, key=lambda a: a.arrival_time
        )
        # Stop without running: drop the scheduled arrival events.
        system.jobtracker.stop()
        system.namenode.stop()

    def test_post_horizon_drops_survive_the_round_trip(self):
        """Arrivals past the admission horizon are DROPPED offered
        load; the capture keeps the admission horizon verbatim so a
        replay drops them again instead of serving them."""
        from repro.service import replay_arrivals
        from repro.workloads import sleep_spec

        spec = sleep_spec(5.0, 2.0, n_maps=2, n_reduces=1)
        entries = [(60.0, "a", spec, None), (5000.0, "b", spec, None)]
        system = _service_system(seed=31)
        service = MoonService(
            system, _service_cfg(capture=True),
            replay_arrivals(entries), pattern="poisson",
        )
        original = service.run()
        system.jobtracker.stop()
        system.namenode.stop()
        assert original.overall.dropped == 1

        captured = service.captured_trace
        assert captured.horizon == HOUR  # the admission horizon
        assert len(captured) == 2  # the dropped arrival is kept

        replay_system = _service_system(seed=31)
        replay = MoonService(
            replay_system,
            _service_cfg(),
            trace_arrivals(captured),
            pattern=captured.pattern,
        ).run()
        replay_system.jobtracker.stop()
        replay_system.namenode.stop()
        assert replay.overall.dropped == 1
        assert replay.render() == original.render()

    def test_non_dyadic_block_sizes_roundtrip_exactly(self):
        """capture stores the per-map block verbatim (no total-input
        division on replay), so even blocks like 0.1 MB — where no
        float total divides back exactly — rebuild bit-exact specs."""
        from repro.service import replay_arrivals
        from repro.workloads import wordcount_spec

        spec = wordcount_spec(
            n_maps=3, block_mb=0.1, n_reduces=2, map_cpu_seconds=30.0
        )
        system = _service_system(seed=41)
        service = MoonService(
            system, _service_cfg(),
            replay_arrivals(
                [(10.0, "a", spec, 600.0), (20.0, "b", spec, None)]
            ),
            pattern="poisson",
        )
        captured = capture_trace(service)
        assert len(captured) == 2
        for row in captured.jobs:
            assert calibrate_job(row) == spec
        system.jobtracker.stop()
        system.namenode.stop()

    def test_single_instant_trace_gets_a_servable_horizon(self):
        trace = WorkloadTrace.build([job(t=0.0)])
        assert trace.horizon == 1.0  # floored; ServiceConfig needs > 0
        assert len(trace_arrivals(trace)) == 1

    def test_capture_of_an_empty_run_is_none_not_a_crash(self):
        system = _service_system(seed=37)
        service = MoonService(
            system, _service_cfg(capture=True), (), pattern="poisson"
        )
        report = service.run()
        system.jobtracker.stop()
        system.namenode.stop()
        assert report.overall.arrived == 0
        assert service.captured_trace is None

    def test_capture_survives_canonical_serialisation(self, tmp_path):
        system = _service_system(seed=29)
        arrivals = poisson_arrivals(
            system.sim.rng("service/arrivals"),
            rate_per_hour=10.0, horizon=HOUR, catalog=sleep_catalog(),
        )
        service = MoonService(
            system, _service_cfg(), arrivals, pattern="poisson"
        )
        captured = capture_trace(service)
        path = tmp_path / "cap.json"
        save_workload_json(path, captured)
        again = load_workload_trace(path)
        assert again.jobs == captured.jobs
        assert trace_arrivals(again) == trace_arrivals(captured)
        system.jobtracker.stop()
        system.namenode.stop()


class TestReplayPatternGuard:
    def test_empty_replay_stream_fails_fast(self):
        system = _service_system()
        with pytest.raises(ConfigError, match="repro replay"):
            MoonService(system, _service_cfg(), (), pattern="replay")
        system.jobtracker.stop()
        system.namenode.stop()

    def test_synthetic_pattern_with_no_arrivals_still_allowed(self):
        # An empty synthetic stream is a valid (if dull) run.
        system = _service_system()
        MoonService(system, _service_cfg(), (), pattern="poisson")
        system.jobtracker.stop()
        system.namenode.stop()

    def test_guard_fires_before_the_autoscaler_arms(self):
        """The failed construction must not leave an orphaned control
        loop on the caller's simulation: after catching the
        ConfigError, the same system serves a real stream cleanly."""
        from repro.service import AutoscaleConfig, poisson_arrivals

        system = _service_system(seed=43)
        with pytest.raises(ConfigError, match="repro replay"):
            MoonService(
                system,
                _service_cfg(autoscale=AutoscaleConfig(policy="reactive")),
                (),
                pattern="replay",
            )
        arrivals = poisson_arrivals(
            system.sim.rng("service/arrivals"),
            rate_per_hour=6.0, horizon=HOUR, catalog=sleep_catalog(),
        )
        report = system.run_service(
            arrivals, _service_cfg(), pattern="poisson"
        )
        system.jobtracker.stop()
        system.namenode.stop()
        assert report.overall.arrived == len(arrivals)
