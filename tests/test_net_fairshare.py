"""Tests for the max-min fair-share network model (ablation model)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FairShareNetwork
from repro.simulation import Simulation


@pytest.fixture
def net(sim):
    n = FairShareNetwork(sim, disk_fraction=0.0)
    for i in range(4):
        n.register_node(i, disk_mbps=50.0, nic_mbps=100.0)
    return n


class TestFairSharing:
    def test_single_flow_gets_full_capacity(self, sim, net):
        times = []
        net.transfer(0, 1, 100.0, on_complete=lambda t: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.0)]

    def test_two_flows_share_common_destination(self, sim, net):
        """Both into node 1's NIC-in (100 MB/s): each gets 50 MB/s."""
        times = []
        net.transfer(0, 1, 100.0, on_complete=lambda t: times.append(sim.now))
        net.transfer(2, 1, 100.0, on_complete=lambda t: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_released_bandwidth_speeds_up_survivor(self, sim, net):
        """Short flow finishes; long flow then runs at full rate.

        50 MB together (t=1.0 at 50 MB/s each), then the remaining
        150 MB at 100 MB/s -> total 2.5 s."""
        times = {}
        net.transfer(0, 1, 50.0, on_complete=lambda t: times.__setitem__("a", sim.now))
        net.transfer(2, 1, 200.0, on_complete=lambda t: times.__setitem__("b", sim.now))
        sim.run()
        assert times["a"] == pytest.approx(1.0)
        assert times["b"] == pytest.approx(2.5)

    def test_disjoint_flows_do_not_interact(self, sim, net):
        times = []
        net.transfer(0, 1, 100.0, on_complete=lambda t: times.append(sim.now))
        net.transfer(2, 3, 100.0, on_complete=lambda t: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_flow_rate_query(self, sim, net):
        t1 = net.transfer(0, 1, 1000.0)
        assert net.flow_rate(t1) == pytest.approx(100.0)
        t2 = net.transfer(2, 1, 1000.0)
        assert net.flow_rate(t1) == pytest.approx(50.0)
        assert net.flow_rate(t2) == pytest.approx(50.0)

    def test_zero_byte_flow_completes(self, sim, net):
        done = []
        net.transfer(0, 1, 0.0, on_complete=lambda t: done.append(1))
        sim.run()
        assert done == [1]


class TestFailures:
    def test_node_down_aborts_touching_flows_only(self, sim, net):
        outcomes = []
        net.transfer(0, 1, 500.0, on_fail=lambda t: outcomes.append("fail-a"))
        net.transfer(2, 3, 500.0, on_complete=lambda t: outcomes.append("done-b"))
        sim.call_at(1.0, net.node_down, 1)
        sim.run()
        assert sorted(outcomes) == ["done-b", "fail-a"]

    def test_submission_to_down_node_fails(self, sim, net):
        net.node_down(3)
        outcomes = []
        net.transfer(0, 3, 10.0, on_fail=lambda t: outcomes.append("fail"))
        sim.run()
        assert outcomes == ["fail"]

    def test_abort_rescales_remaining_flows(self, sim, net):
        """After a competing flow dies, the survivor speeds up."""
        times = {}
        net.transfer(0, 1, 200.0, on_complete=lambda t: times.__setitem__("s", sim.now))
        net.transfer(2, 1, 500.0)  # competitor
        sim.call_at(1.0, net.node_down, 2)
        sim.run()
        # 1 s at 50 MB/s (50 MB done) + 150 MB at 100 MB/s = 2.5 s.
        assert times["s"] == pytest.approx(2.5)


class TestConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=12
        )
    )
    def test_property_per_channel_rates_never_exceed_capacity(self, sizes):
        """Max-min allocation respects every channel capacity."""
        sim = Simulation(seed=0)
        net = FairShareNetwork(sim, disk_fraction=0.0)
        for i in range(3):
            net.register_node(i, disk_mbps=50.0, nic_mbps=100.0)
        flows = [net.transfer(i % 2, 2, mb) for i, mb in enumerate(sizes)]
        total_into_2 = sum(net.flow_rate(t) for t in flows)
        assert total_into_2 <= 100.0 + 1e-6
        for src in (0, 1):
            out = sum(net.flow_rate(t) for t in flows if t.src == src)
            assert out <= 100.0 + 1e-6
        sim.run()
        assert all(t.state == "done" for t in flows)

    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=200.0), min_size=1, max_size=10
        )
    )
    def test_property_completion_conserves_bytes(self, sizes):
        """Every submitted byte is eventually delivered exactly once."""
        sim = Simulation(seed=0)
        net = FairShareNetwork(sim, disk_fraction=0.0)
        net.register_node(0, disk_mbps=50.0, nic_mbps=80.0)
        net.register_node(1, disk_mbps=50.0, nic_mbps=80.0)
        delivered = []
        for mb in sizes:
            net.transfer(0, 1, mb, on_complete=lambda t: delivered.append(t.size_mb))
        sim.run()
        assert sum(delivered) == pytest.approx(sum(sizes))
        assert net.mb_served[1] == pytest.approx(sum(sizes))
