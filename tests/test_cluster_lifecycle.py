"""Dynamic dedicated-tier membership: provision, graceful drain,
decommission — including the edge paths the autoscaler leans on
(drain while a map runs, drain a shuffle source, immediate id reuse).
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, Node, NodeKind
from repro.config import (
    ClusterConfig,
    NodeSpec,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.dfs import ReplicationFactor
from repro.errors import ConfigError, NetworkError
from repro.workloads import sleep_spec, sort_spec


def make_system(
    seed=3, rate=0.0, n_volatile=4, n_dedicated=2, dedicated_primary=False
):
    from dataclasses import replace

    scheduler = moon_scheduler_config()
    if dedicated_primary:
        scheduler = replace(scheduler, dedicated_primary=True)
    return moon_system(
        SystemConfig(
            cluster=ClusterConfig(
                n_volatile=n_volatile, n_dedicated=n_dedicated
            ),
            trace=TraceConfig(unavailability_rate=rate),
            scheduler=scheduler,
            seed=seed,
        )
    )


class TestClusterMembership:
    def test_provision_appends_dedicated_node(self):
        c = Cluster([Node(0, NodeKind.VOLATILE, NodeSpec())])
        events = []
        c.on_provision(lambda n: events.append(n.node_id))
        node = c.provision_dedicated()
        assert node.node_id == 1
        assert node.is_dedicated
        assert node in c.dedicated and node in c.nodes
        assert events == [1]

    def test_decommission_requires_dedicated(self):
        c = Cluster(
            [
                Node(0, NodeKind.VOLATILE, NodeSpec()),
                Node(1, NodeKind.DEDICATED, NodeSpec()),
            ]
        )
        with pytest.raises(ConfigError):
            c.decommission_dedicated(0)  # volatile
        with pytest.raises(ConfigError):
            c.decommission_dedicated(99)  # unknown
        c.decommission_dedicated(1)
        with pytest.raises(ConfigError):
            c.decommission_dedicated(1)  # already draining

    def test_last_node_cannot_be_decommissioned(self):
        c = Cluster([Node(0, NodeKind.DEDICATED, NodeSpec())])
        with pytest.raises(ConfigError):
            c.decommission_dedicated(0)

    def test_drain_then_finish_fires_listener_order(self):
        c = Cluster(
            [
                Node(0, NodeKind.DEDICATED, NodeSpec()),
                Node(1, NodeKind.DEDICATED, NodeSpec()),
            ]
        )
        log = []
        c.on_drain_begin(lambda n: log.append(("drain", n.node_id)))
        c.on_decommission(lambda n: log.append(("gone", n.node_id)))
        node = c.decommission_dedicated(1)
        assert node.draining
        assert node not in c.dedicated  # out of the candidate pools...
        assert node in c.nodes  # ...but still physically present
        assert log == [("drain", 1)]
        c.finish_decommission(1)
        assert node not in c.nodes
        assert log == [("drain", 1), ("gone", 1)]
        with pytest.raises(ConfigError):
            c.finish_decommission(1)

    def test_retired_ids_reused_lowest_first(self):
        c = Cluster(
            [Node(i, NodeKind.DEDICATED, NodeSpec()) for i in range(3)]
        )
        for nid in (2, 0):
            c.decommission_dedicated(nid)
            c.finish_decommission(nid)
        assert c.provision_dedicated().node_id == 0
        assert c.provision_dedicated().node_id == 2
        assert c.provision_dedicated().node_id == 3  # pool exhausted


class TestWiredProvision:
    """A provisioned node is live across every observer."""

    def test_new_node_visible_everywhere(self):
        system = make_system()
        node = system.cluster.provision_dedicated()
        nid = node.node_id
        # Network ports registered (transfer-capable).
        assert system.network.is_up(nid)
        # NameNode: a fresh, empty, ALIVE DataNode, throttle-watched.
        assert system.namenode.is_dedicated(nid)
        assert system.namenode.node_is_servable(nid)
        assert nid in system.namenode.throttle.detectors
        # JobTracker: tracker exists and sits in the assignment walk.
        assert nid in system.jobtracker.trackers
        assert any(
            t.node_id == nid
            for t in system.jobtracker._assignment_order_cache
        )

    def test_provisioned_node_runs_tasks(self):
        system = make_system(
            n_volatile=1, n_dedicated=1, dedicated_primary=True
        )
        system.cluster.provision_dedicated()
        spec = sleep_spec(10.0, 4.0, n_maps=12, n_reduces=1)
        result = system.run_job(spec, time_limit=3600.0)
        assert result.succeeded
        new_id = system.cluster.dedicated[-1].node_id
        hosted = [
            a
            for job in system.jobtracker.jobs
            for t in job.tasks
            for a in t.attempts
            if a.node_id == new_id
        ]
        assert hosted, "the provisioned node never hosted an attempt"


class TestGracefulDrain:
    def test_drain_mid_map_finishes_running_work(self):
        """A draining node completes its running map, takes nothing
        new, then leaves at a heartbeat tick."""
        system = make_system(
            n_volatile=1, n_dedicated=2, dedicated_primary=True
        )
        spec = sleep_spec(60.0, 5.0, n_maps=10, n_reduces=1)
        job = system.submit(spec)
        # Let the first assignment land map attempts on dedicated slots.
        system.sim.run(until=5.0)
        victim = None
        for node in system.cluster.dedicated:
            tracker = system.jobtracker.trackers[node.node_id]
            if tracker.running_attempts():
                victim = node
                break
        assert victim is not None
        tracker = system.jobtracker.trackers[victim.node_id]
        running = list(tracker.running_attempts())
        system.cluster.decommission_dedicated(victim.node_id)
        assert tracker.draining and not tracker.usable
        # Still draining while its map runs (map takes 60 s).
        system.sim.run(until=30.0)
        assert victim in system.cluster.draining_nodes()
        for attempt in running:
            assert not attempt.finished
        # Run to job completion: the attempts finish normally (not
        # killed) and the node leaves the cluster afterwards.
        system.sim.run(until=3600.0, stop_when=lambda: job.finished)
        assert job.state.value == "succeeded"
        assert all(a.state.value == "succeeded" for a in running)
        assert victim.node_id not in system.jobtracker.trackers
        assert victim not in system.cluster.nodes
        system.jobtracker.stop()
        system.namenode.stop()

    def test_drain_mid_shuffle_source_reducers_refetch(self):
        """Decommissioning the only holder of map output mid-shuffle
        forces the fetch-failure path: reducers re-fetch after the
        JobTracker re-executes (or the DFS re-replicates) the maps."""
        system = make_system(n_volatile=4, n_dedicated=2)
        # Intermediate data pinned to dedicated nodes only (d=1, v=0):
        # every shuffle fetch sources from the dedicated tier.
        spec = sort_spec(n_maps=6, block_mb=8.0).with_(
            n_reduces=2,
            reduces_per_slot=0.0,
            intermediate_rf=ReplicationFactor(1, 0),
        )
        job = system.submit(spec)

        def shuffling() -> bool:
            return any(
                a.runner is not None
                and getattr(a.runner, "_inflight", None)
                for t in job.reduces
                for a in t.live_attempts()
            )

        system.sim.run(until=3600.0, stop_when=shuffling)
        assert shuffling(), "no reduce reached the shuffle phase"
        # The dedicated node holding map output is a pure data server
        # here (no running attempts), so the drain completes at the
        # next tick — with fetches possibly in flight against it.
        victim = system.cluster.dedicated[0]
        held = [
            b
            for f in system.namenode.files()
            for b in f.blocks
            if victim.node_id in b.replicas
        ]
        assert held, "victim holds no blocks; scenario is vacuous"
        system.cluster.decommission_dedicated(victim.node_id)
        system.sim.run(until=4 * 3600.0, stop_when=lambda: job.finished)
        assert job.state.value == "succeeded"
        assert victim.node_id not in system.jobtracker.trackers
        # The lost shuffle sources were noticed and recovered.
        recovered = (
            job.counters["fetch_failures"]
            + job.counters["map_reexecutions"]
            + system.namenode.counters["replications_issued"]
        )
        assert recovered > 0
        system.jobtracker.stop()
        system.namenode.stop()

    def test_scale_down_then_up_reuses_node_id(self):
        """Immediate re-provision after a drain gets the retired id
        back with completely fresh per-node state everywhere."""
        system = make_system(n_volatile=2, n_dedicated=2)
        victim = system.cluster.dedicated[1]
        nid = victim.node_id
        system.cluster.decommission_dedicated(nid)
        # Idle tracker: the next heartbeat tick completes the drain.
        system.sim.run(until=10.0)
        assert nid not in system.jobtracker.trackers
        with pytest.raises(NetworkError):
            system.network.ports(nid)
        node = system.cluster.provision_dedicated()
        assert node.node_id == nid
        assert node is not victim  # a genuinely new machine
        assert not node.draining
        tracker = system.jobtracker.trackers[nid]
        assert not tracker.draining and tracker.usable
        assert not system.namenode.info(nid).blocks
        assert system.network.is_up(nid)
        # And it serves: run a job to completion on the rebuilt tier.
        result = system.run_job(
            sleep_spec(5.0, 2.0, n_maps=4, n_reduces=1),
            time_limit=3600.0,
        )
        assert result.succeeded
        system.jobtracker.stop()
        system.namenode.stop()

    def test_sole_replica_holder_waits_for_copy_off(self):
        """An idle node holding the only replica of a block must not
        leave before the copy-off lands — even though its tracker
        drains instantly, the data gate holds it back."""
        system = make_system(n_volatile=4, n_dedicated=2)
        file = system.dfs.stage_input(
            "/in/solo", 8.0, ReplicationFactor(1, 0), block_size_mb=8.0
        )
        (block,) = file.blocks
        (victim,) = block.dedicated_replicas
        system.cluster.decommission_dedicated(victim)
        # Several heartbeat ticks pass before the 10 s replication
        # scan: the idle tracker alone must not complete the drain.
        system.sim.run(until=9.0)
        assert victim in {n.node_id for n in system.cluster.draining_nodes()}
        # Once the re-replication lands a second copy, the node leaves
        # — without ever losing the block.
        system.sim.run(until=120.0)
        assert victim not in system.jobtracker.trackers
        assert block.replicas and victim not in block.replicas
        assert system.namenode.counters["blocks_lost"] == 0
        system.jobtracker.stop()
        system.namenode.stop()

    def test_draining_node_stops_counting_toward_factors(self):
        """Drain-begin queues the node's blocks for proactive copy-off
        (its replicas stop satisfying replication factors)."""
        system = make_system(n_volatile=4, n_dedicated=2)
        file = system.dfs.stage_input(
            "/in/data", 32.0, ReplicationFactor(1, 1), block_size_mb=8.0
        )
        holders = {
            nid
            for b in file.blocks
            for nid in b.dedicated_replicas
        }
        assert holders
        victim = next(iter(sorted(holders)))
        queued_before = system.namenode.replication_queue_length()
        system.cluster.decommission_dedicated(victim)
        assert system.namenode.replication_queue_length() > queued_before
        system.jobtracker.stop()
        system.namenode.stop()


class TestDecommissionRaces:
    """Named regressions for the two decommission races: a retired id
    probed through the network model, and the service's stream drain
    racing ``finish_decommission``."""

    def test_network_is_up_false_for_retired_id_error_for_unknown(self):
        """Observers holding a node id across its decommission (the
        availability monitor, in-flight transfer callbacks) probe
        ``is_up`` after the node left the network.  A *retired* id must
        answer False — only an id that never existed is a caller bug."""
        system = make_system(n_volatile=2, n_dedicated=2)
        victim = system.cluster.dedicated[-1].node_id
        assert system.network.is_up(victim)
        system.cluster.decommission_dedicated(victim)
        # Idle node, no sole replicas: the next heartbeat tick retires it.
        system.sim.run(until=10.0)
        assert victim not in {
            n.node_id for n in system.cluster.draining_nodes()
        }
        assert system.network.is_up(victim) is False
        with pytest.raises(NetworkError):
            system.network.is_up(999)
        system.jobtracker.stop()
        system.namenode.stop()

    def test_stream_drain_waits_for_in_flight_decommission(self):
        """The stream drain stops the sim at the exact event that
        finishes the last job — which can be the very event that makes
        a drain gate clearable.  run() must drain the decommission out
        instead of reporting the node as draining forever."""
        from repro.service import MoonService, ServiceConfig, replay_arrivals

        system = make_system(n_volatile=2, n_dedicated=2,
                             dedicated_primary=True)
        spec = sleep_spec(30.0, 5.0, n_maps=4, n_reduces=1)
        victim = system.cluster.dedicated[-1].node_id
        # Decommission lands while the job still runs on the dedicated
        # tier: the victim's unfinished attempts hold the drain gate
        # shut until the final task — the one that ends the stream.
        system.sim.call_at(
            5.0, system.cluster.decommission_dedicated, victim
        )
        service = MoonService(
            system,
            ServiceConfig(horizon=600.0),
            replay_arrivals([(0.0, "tenant-1", spec, None)]),
        )
        report = service.run()
        assert report.overall.completed == 1
        assert not system.cluster.draining_nodes()
        assert victim not in system.jobtracker.trackers
        system.jobtracker.stop()
        system.namenode.stop()
