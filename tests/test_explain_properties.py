"""Blame-conservation property suite (ISSUE 9, hypothesis).

The blame taxonomy's load-bearing promise is *conservation*: for every
finished job, the attributed components sum to its response time — no
seconds lost, none invented — and every component is non-negative.
That must hold not just on the curated scenarios but across the whole
configuration cube: random job mixes, churn rates, detector modes,
preemption modes and queue policies.  The partition-at-change-points
construction makes it true by design; this suite is the fence that
keeps future instrumentation or classifier edits honest.

Also pinned here: two identical seeded runs always diff clean through
``repro diff`` (trace and metrics artifacts alike).
"""

from __future__ import annotations

import itertools
import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (
    ClusterConfig,
    DetectorConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.obs import Observability, ObsConfig
from repro.obs.explain import BLAME_CATEGORIES, explain_tracer
from repro.service import (
    MoonService,
    PreemptConfig,
    ServiceConfig,
    replay_arrivals,
)
from repro.workloads import sleep_spec

HOUR = 3600.0


@st.composite
def service_scenario(draw):
    """One random (arrivals, system knobs) point of the config cube."""
    n_jobs = draw(st.integers(min_value=2, max_value=5))
    entries = []
    t = 0.0
    for i in range(n_jobs):
        t += draw(st.sampled_from([0.0, 30.0, 180.0]))
        spec = sleep_spec(
            map_seconds=draw(st.sampled_from([10.0, 60.0, 240.0])),
            reduce_seconds=draw(st.sampled_from([5.0, 30.0])),
            n_maps=draw(st.integers(min_value=2, max_value=8)),
            n_reduces=draw(st.integers(min_value=0, max_value=2)),
        ).with_(name=f"mix-{i % 2}")
        deadline = draw(st.sampled_from([300.0, HOUR, 4 * HOUR]))
        tenant = draw(st.sampled_from(["a", "b"]))
        entries.append((t, tenant, spec, deadline))
    return {
        "entries": entries,
        "seed": draw(st.integers(min_value=1, max_value=50)),
        "rate": draw(st.sampled_from([0.0, 0.3, 0.6])),
        "detector": draw(
            st.sampled_from(["oracle", "timeout", "adaptive"])
        ),
        "preempt": draw(
            st.sampled_from([None, "deprioritise", "pause"])
        ),
        "policy": draw(st.sampled_from(["fifo", "edf"])),
    }


def _run_scenario(sc):
    obs = Observability(ObsConfig(trace=True))
    system = moon_system(
        SystemConfig(
            cluster=ClusterConfig(n_volatile=6, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=sc["rate"]),
            scheduler=moon_scheduler_config(),
            detector=DetectorConfig(mode=sc["detector"]),
            seed=sc["seed"],
        ),
        obs=obs,
    )
    service = MoonService(
        system,
        ServiceConfig(
            policy=sc["policy"],
            max_in_flight=2,
            horizon=2 * HOUR,
            drain_limit=8 * HOUR,
            preempt=(
                PreemptConfig(mode=sc["preempt"])
                if sc["preempt"] else None
            ),
        ),
        replay_arrivals(sc["entries"]),
    )
    report = service.run()
    system.jobtracker.stop()
    system.namenode.stop()
    return report, obs


class TestBlameConservation:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(sc=service_scenario())
    def test_components_sum_to_response_time_everywhere(self, sc):
        report, obs = _run_scenario(sc)
        exp = explain_tracer(obs.tracer)
        for blame in exp.jobs:
            # Conservation: response time is fully partitioned.
            assert abs(blame.total - blame.response_time) < 1e-6, (
                sc, blame.graph.label, blame.components,
            )
            # No negative blame, no category outside the taxonomy.
            assert set(blame.components) == set(BLAME_CATEGORIES)
            for seconds in blame.components.values():
                assert seconds >= -1e-9
            # Segments are a contiguous non-overlapping chain.
            for a, b in zip(blame.segments, blame.segments[1:]):
                assert abs(a.end - b.start) < 1e-9
        # The report-level rollup conserves too.
        if exp.jobs:
            assert report.blame is not None
            total_attributed = math.fsum(report.blame.values())
            total_response = math.fsum(
                b.response_time for b in exp.jobs
            )
            assert abs(total_attributed - total_response) < 1e-6


def _rewound_id_streams():
    """Rewind process-global id streams so an in-process rerun is
    equivalent to a second CLI invocation (the case the byte-identity
    guarantee is stated for)."""
    from repro.mapreduce.job import Job
    from repro.mapreduce.task import TaskAttempt

    Job._ids = itertools.count()
    TaskAttempt._ids = itertools.count()


class TestIdenticalRunsDiffClean:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=1, max_value=20),
        rate=st.sampled_from([0.0, 0.4]),
    )
    def test_seeded_rerun_reports_no_divergence(
        self, tmp_path_factory, seed, rate
    ):
        from repro.cli import main
        from repro.obs.explain import diff_files

        tmp = tmp_path_factory.mktemp("diffclean")
        sc = {
            "entries": [
                (0.0, "a", sleep_spec(60.0, 10.0, n_maps=4,
                                      n_reduces=1), HOUR),
                (30.0, "b", sleep_spec(20.0, 5.0, n_maps=3,
                                       n_reduces=0), HOUR),
            ],
            "seed": seed,
            "rate": rate,
            "detector": "timeout",
            "preempt": "pause",
            "policy": "edf",
        }
        paths = []
        for i in range(2):
            _rewound_id_streams()
            report, obs = _run_scenario(sc)
            trace_path = tmp / f"{seed}-{rate}-{i}.trace.json"
            metrics_path = tmp / f"{seed}-{rate}-{i}.metrics.json"
            obs.tracer.write_chrome(str(trace_path))
            obs.metrics.write_json(str(metrics_path))
            paths.append((trace_path, metrics_path))
        (ta, ma), (tb, mb) = paths
        kind, div, compared = diff_files(str(ta), str(tb))
        assert (kind, div) == ("trace", None), div
        assert compared > 0
        kind, div, _ = diff_files(str(ma), str(mb))
        assert (kind, div) == ("metrics", None), div
        # And the CLI agrees (exit 0 = "no divergence").
        assert main(["diff", str(ta), str(tb)]) == 0
        assert main(["diff", str(ma), str(mb)]) == 0
