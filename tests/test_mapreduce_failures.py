"""MapReduce behaviour under node volatility: the paper's core regime."""

from __future__ import annotations

import pytest

from repro.config import SchedulerConfig, ShuffleConfig, hadoop_scheduler_config
from repro.dfs import ReplicationFactor
from repro.mapreduce import AttemptState, JobState, TaskState

from helpers import build_mr
from test_mapreduce_basic import tiny_job


class TestVmPauseSemantics:
    def test_suspended_attempt_freezes_and_resumes(self, sim):
        """An attempt on a suspended node makes no progress, survives,
        and completes after the node returns (VM-pause, III).  A single
        one-node cluster isolates pause/resume from any rescue path."""
        traces = {0: [(2.0, 50.0)]}
        cfg = SchedulerConfig(kind="moon", suspension_interval=60.0,
                              tracker_expiry_interval=1800.0,
                              homestretch_threshold_pct=0.0)
        cluster, _, nn, jt = build_mr(
            sim, scheduler_cfg=cfg, n_volatile=1, n_dedicated=0, traces=traces
        )
        job = jt.submit(tiny_job(
            n_maps=1, n_reduces=0, map_cpu_seconds=10.0,
            input_rf=ReplicationFactor(0, 1),
            intermediate_rf=ReplicationFactor(0, 1),
            output_rf=ReplicationFactor(0, 1),
        ))
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED
        # ~2 s of work before the outage, 48 s frozen, then the rest:
        # the single attempt finished well after the node returned.
        t = job.maps[0]
        assert len(t.attempts) == 1
        assert t.attempts[0].finished_at > 50.0

    def test_moon_flags_inactive_after_suspension_interval(self, sim):
        traces = {0: [(2.0, 500.0)]}
        cfg = SchedulerConfig(kind="moon", suspension_interval=30.0,
                              tracker_expiry_interval=1800.0,
                              homestretch_threshold_pct=0.0)
        cluster, _, nn, jt = build_mr(
            sim, scheduler_cfg=cfg, n_volatile=1, n_dedicated=0, traces=traces
        )
        job = jt.submit(tiny_job(
            n_maps=1, n_reduces=0, map_cpu_seconds=60.0,
            input_rf=ReplicationFactor(0, 1),
            intermediate_rf=ReplicationFactor(0, 1),
            output_rf=ReplicationFactor(0, 1),
        ))
        sim.run(until=40.0)
        a = job.maps[0].attempts[0]
        assert a.state is AttemptState.INACTIVE
        assert job.maps[0].is_frozen()
        sim.run(until=520.0)
        assert a.state in (AttemptState.RUNNING, AttemptState.KILLED,
                           AttemptState.SUCCEEDED)

    def test_hadoop_kills_on_expiry_and_reschedules(self, sim):
        # Single node: the map must run on it, get killed at expiry,
        # and be rescheduled when the tracker rejoins.
        traces = {0: [(2.0, 5000.0)]}
        cfg = hadoop_scheduler_config(tracker_expiry_interval=60.0)
        cluster, _, nn, jt = build_mr(
            sim, scheduler_cfg=cfg, n_volatile=1, n_dedicated=0, traces=traces
        )
        job = jt.submit(
            tiny_job(n_maps=1, n_reduces=0, map_cpu_seconds=30.0,
                     input_rf=ReplicationFactor(0, 1),
                     intermediate_rf=ReplicationFactor(0, 1),
                     output_rf=ReplicationFactor(0, 1))
        )
        sim.run(until=8 * 3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED
        killed = [
            a for t in job.maps for a in t.attempts
            if a.state is AttemptState.KILLED
        ]
        assert len(killed) >= 1  # the copy on the dead node was killed
        assert job.counters["killed_map_attempts"] >= 1

    def test_premature_kill_wastes_work(self, sim):
        """Short expiry kills a task that would have resumed — the
        Hadoop1Min trade-off the paper describes (V-A)."""
        traces = {1: [(10.0, 100.0)]}
        cfg = hadoop_scheduler_config(tracker_expiry_interval=60.0)
        cluster, _, nn, jt = build_mr(
            sim, scheduler_cfg=cfg, n_volatile=2, n_dedicated=0, traces=traces
        )
        job = jt.submit(
            tiny_job(n_maps=4, n_reduces=0, map_cpu_seconds=300.0,
                     input_rf=ReplicationFactor(0, 2),
                     intermediate_rf=ReplicationFactor(0, 1),
                     output_rf=ReplicationFactor(0, 1))
        )
        sim.run(until=8 * 3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED
        assert job.counters["killed_map_attempts"] >= 1


class TestFetchFailures:
    def _lossy_setup(self, sim, scheduler_cfg, n_volatile=6):
        """Node 2 hosts intermediate data then disappears forever
        just after the maps finish (~4.6 s) and before the shuffle."""
        traces = {2: [(6.0, 90000.0)]}
        return build_mr(
            sim,
            scheduler_cfg=scheduler_cfg,
            shuffle_cfg=ShuffleConfig(moon_fetch_failures=2,
                                      fetch_retry_interval=5.0),
            n_volatile=n_volatile,
            n_dedicated=0,
            traces=traces,
        )

    def _lossy_job(self, **kw):
        # Intermediate lives only on the producing node (VO-V1 style).
        return tiny_job(
            n_maps=6,
            n_reduces=2,
            map_cpu_seconds=3.0,
            input_rf=ReplicationFactor(0, 3),
            intermediate_rf=ReplicationFactor(0, 1),
            output_rf=ReplicationFactor(0, 2),
            # Hold reduces until all maps are done so the shuffle starts
            # after node 2 (holding some outputs) disappears.
            **kw,
        )

    def test_moon_reexecutes_lost_map_quickly(self, sim):
        cfg = SchedulerConfig(kind="moon", suspension_interval=30.0,
                              tracker_expiry_interval=1800.0,
                              reduce_slowstart_fraction=1.0)
        cluster, _, nn, jt = self._lossy_setup(sim, cfg)
        job = jt.submit(self._lossy_job())
        sim.run(until=8 * 3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED
        assert job.counters["map_reexecutions"] >= 1
        assert job.counters["fetch_failures"] >= 1

    def test_hadoop_majority_rule_also_recovers(self, sim):
        cfg = hadoop_scheduler_config(tracker_expiry_interval=600.0)
        cfg = SchedulerConfig(
            kind="hadoop",
            tracker_expiry_interval=600.0,
            hybrid_aware=False,
            reduce_slowstart_fraction=1.0,
        )
        cluster, _, nn, jt = self._lossy_setup(sim, cfg)
        job = jt.submit(self._lossy_job())
        sim.run(until=8 * 3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED
        assert job.counters["map_reexecutions"] >= 1

    def test_moon_faster_than_hadoop_on_intermediate_loss(self):
        """VI-B: the 50% rule reacts too slowly; MOON's file-system
        query path recovers sooner."""
        from repro.simulation import Simulation

        def run(kind):
            s = Simulation(seed=11)
            cfg = SchedulerConfig(
                kind=kind,
                suspension_interval=30.0 if kind == "moon" else 60.0,
                tracker_expiry_interval=1800.0,
                reduce_slowstart_fraction=1.0,
            )
            cluster, _, nn, jt = self._lossy_setup(s, cfg)
            job = jt.submit(self._lossy_job())
            s.run(until=8 * 3600.0, stop_when=lambda: job.finished)
            assert job.state is JobState.SUCCEEDED
            return job.elapsed

        assert run("moon") <= run("hadoop")


class TestJobFailure:
    def test_job_fails_after_max_input_failures(self, sim):
        """Footnote 1: a map rescheduled 4 times fails the job."""
        # Hadoop scheduler so the always-up ex-dedicated machines run
        # normal tasks; both input-hosting volatile nodes are down, so
        # reads exhaust the 4-attempt budget.
        cfg = SchedulerConfig(kind="hadoop", max_task_attempts=4,
                              tracker_expiry_interval=600.0,
                              hybrid_aware=False)
        traces = {2: [(0.0, 90000.0)], 3: [(0.0, 90000.0)]}
        cluster, net, nn, jt = build_mr(
            sim, scheduler_cfg=cfg, n_volatile=2, n_dedicated=2,
            traces=traces,
        )
        job = jt.submit(tiny_job(
            n_maps=2, n_reduces=1,
            input_rf=ReplicationFactor(0, 2),
        ))
        sim.run(until=4 * 3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.FAILED
        assert "input unavailable" in job.failure_reason
