"""Autoscaler unit tests: config validation, the three policies'
decision logic, node-hours accounting, audit records, and the
zero-capacity service rejection."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import (
    ClusterConfig,
    NodeSpec,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.errors import ConfigError
from repro.service import (
    AutoscaleConfig,
    MoonService,
    ServiceConfig,
    render_decisions,
    replay_arrivals,
    sleep_catalog,
    bursty_arrivals,
)
from repro.workloads import sleep_spec

HOUR = 3600.0


def make_system(seed=3, rate=0.0, n_volatile=8, n_dedicated=3,
                dedicated_primary=True):
    scheduler = moon_scheduler_config()
    if dedicated_primary:
        scheduler = replace(scheduler, dedicated_primary=True)
    return moon_system(
        SystemConfig(
            cluster=ClusterConfig(
                n_volatile=n_volatile, n_dedicated=n_dedicated
            ),
            trace=TraceConfig(unavailability_rate=rate),
            scheduler=scheduler,
            seed=seed,
        )
    )


def quick_spec(map_seconds=5.0, name="sleep"):
    return sleep_spec(map_seconds, 2.0, n_maps=4, n_reduces=1).with_(
        name=name
    )


def serve(system, entries, autoscale, **cfg_kwargs):
    cfg_kwargs.setdefault("horizon", 1 * HOUR)
    report = system.run_service(
        replay_arrivals(entries),
        ServiceConfig(autoscale=autoscale, **cfg_kwargs),
    )
    system.jobtracker.stop()
    system.namenode.stop()
    return report


class TestAutoscaleConfig:
    def test_policy_names_validated(self):
        with pytest.raises(ConfigError):
            AutoscaleConfig(policy="magic").validate()
        for p in ("static", "reactive", "predictive"):
            AutoscaleConfig(policy=p).validate()

    def test_bounds_validated(self):
        with pytest.raises(ConfigError):
            AutoscaleConfig(interval=0.0).validate()
        with pytest.raises(ConfigError):
            AutoscaleConfig(min_dedicated=-1).validate()
        with pytest.raises(ConfigError):
            AutoscaleConfig(min_dedicated=5, max_dedicated=4).validate()
        with pytest.raises(ConfigError):
            AutoscaleConfig(queue_low=9, queue_high=4).validate()
        with pytest.raises(ConfigError):
            AutoscaleConfig(miss_high=1.5).validate()
        with pytest.raises(ConfigError):
            AutoscaleConfig(step_up=0).validate()
        with pytest.raises(ConfigError):
            AutoscaleConfig(ewma_alpha=0.0).validate()
        with pytest.raises(ConfigError):
            AutoscaleConfig(jobs_per_node_hour=0.0).validate()

    def test_zero_capacity_cluster_rejected(self):
        """Satellite fix: a cluster with no task slots must be rejected
        at service construction, not hang the drain loop."""
        slotless = NodeSpec(map_slots=0, reduce_slots=0)
        system = moon_system(
            SystemConfig(
                cluster=ClusterConfig(
                    n_volatile=0,
                    n_dedicated=2,
                    dedicated=slotless,
                ),
                trace=TraceConfig(unavailability_rate=0.0),
                scheduler=moon_scheduler_config(),
                seed=1,
            )
        )
        with pytest.raises(ConfigError, match="zero-capacity"):
            MoonService(system, ServiceConfig())

    def test_min_dedicated_floor_on_volatile_free_cluster(self):
        """A cluster whose only capacity is the dedicated tier must not
        be allowed to autoscale to zero nodes."""
        system = moon_system(
            SystemConfig(
                cluster=ClusterConfig(n_volatile=0, n_dedicated=2),
                trace=TraceConfig(unavailability_rate=0.0),
                scheduler=moon_scheduler_config(),
                seed=1,
            )
        )
        with pytest.raises(ConfigError, match="min_dedicated"):
            MoonService(
                system,
                ServiceConfig(
                    autoscale=AutoscaleConfig(
                        policy="reactive", min_dedicated=0
                    )
                ),
            )


class TestStaticPolicy:
    def test_static_never_scales_but_meters_cost(self):
        system = make_system()
        report = serve(
            system,
            [(0.0, "a", quick_spec(), None)],
            AutoscaleConfig(policy="static"),
        )
        assert report.autoscale == "static"
        assert report.scale_events == []
        assert report.dedicated_final == 3
        # node-hours = 3 nodes x run duration.
        expected = 3 * report.end_time / HOUR
        assert report.node_hours == pytest.approx(expected)
        assert "autoscale=static" in report.render()

    def test_plain_service_reports_no_cost_fields(self):
        system = make_system()
        report = serve(system, [(0.0, "a", quick_spec(), None)], None)
        assert report.autoscale is None
        assert report.node_hours is None
        assert "autoscale" not in report.render()
        assert "autoscale" not in report.to_dict()


class TestReactivePolicy:
    def test_scales_up_under_backlog_and_sheds_when_idle(self):
        system = make_system(n_volatile=2, n_dedicated=2)
        # 14 simultaneous long jobs swamp 2+2 nodes: the queue builds.
        burst = [(0.0, "a", quick_spec(40.0), None)] * 14
        cfg = AutoscaleConfig(
            policy="reactive",
            interval=15.0,
            min_dedicated=1,
            max_dedicated=5,
            down_cooldown=30.0,
        )
        report = serve(
            system, burst, cfg, max_in_flight=8, drain_limit=2 * HOUR
        )
        ups = [d for d in report.scale_events if d.action == "up"]
        downs = [d for d in report.scale_events if d.action == "down"]
        assert ups, "backlog never triggered a scale-up"
        assert max(d.after for d in ups) <= 5
        assert downs, "idle drain never triggered a scale-down"
        assert report.dedicated_final == 1  # shed to the floor
        assert report.overall.completed == 14

    def test_audit_rows_render(self):
        system = make_system(n_volatile=2, n_dedicated=2)
        burst = [(0.0, "a", quick_spec(40.0), None)] * 14
        report = serve(
            system,
            burst,
            AutoscaleConfig(policy="reactive", interval=15.0),
            max_in_flight=8,
        )
        text = render_decisions(report.scale_events)
        assert "autoscale audit - policy=reactive" in text
        assert "queue" in text
        assert render_decisions([]) == "autoscale audit: no scale actions"


class TestPredictivePolicy:
    def test_tracks_arrival_rate_up_and_down(self):
        system = make_system(n_volatile=2, n_dedicated=1)
        # A dense minute of arrivals, then silence; the straggler at
        # t=25min keeps the service alive while the EWMA decays.
        entries = [
            (float(i), "a", quick_spec(10.0), None) for i in range(20)
        ] + [(1500.0, "a", quick_spec(10.0), None)]
        cfg = AutoscaleConfig(
            policy="predictive",
            interval=15.0,
            min_dedicated=1,
            max_dedicated=6,
            jobs_per_node_hour=200.0,
            down_cooldown=30.0,
        )
        report = serve(
            system, entries, cfg, max_in_flight=8, drain_limit=2 * HOUR
        )
        ups = [d for d in report.scale_events if d.action == "up"]
        downs = [d for d in report.scale_events if d.action == "down"]
        assert ups and all(d.ewma_rate is not None for d in ups)
        # The EWMA decays after the burst: the tier returns to the floor.
        assert downs and downs[-1].after == 1
        assert report.dedicated_final <= 2
        assert report.overall.completed == 21


class TestDeterminism:
    def test_same_seed_identical_autoscaled_report(self):
        def one_run():
            system = make_system(seed=11, rate=0.3, n_volatile=6,
                                 n_dedicated=2)
            arrivals = bursty_arrivals(
                system.sim.rng("service/arrivals"),
                bursts_per_hour=3.0,
                burst_size_mean=8.0,
                horizon=1 * HOUR,
                catalog=sleep_catalog(),
            )
            report = system.run_service(
                arrivals,
                ServiceConfig(
                    policy="edf",
                    max_in_flight=4,
                    horizon=HOUR,
                    autoscale=AutoscaleConfig(
                        policy="reactive", interval=20.0
                    ),
                ),
                pattern="bursty",
            )
            system.jobtracker.stop()
            system.namenode.stop()
            return report

        r1, r2 = one_run(), one_run()
        assert r1.render() == r2.render()
        assert r1.to_dict() == r2.to_dict()
        assert render_decisions(r1.scale_events) == render_decisions(
            r2.scale_events
        )
        assert r1.node_hours == r2.node_hours
