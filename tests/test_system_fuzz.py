"""Whole-system fuzzing: random configurations must never wedge.

Model-checking-lite for the full stack: across randomly drawn cluster
shapes, volatility levels and workload geometries, a run must terminate
(no event-loop hangs), end in a legal state, and keep its accounting
self-consistent.  These invariants catch the class of bugs unit tests
miss — cross-layer interactions under ugly parameter combinations.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (
    ClusterConfig,
    SchedulerConfig,
    SystemConfig,
    TraceConfig,
)
from repro.core import moon_system
from repro.workloads import sleep_spec


@st.composite
def system_and_job(draw):
    n_volatile = draw(st.integers(min_value=2, max_value=16))
    n_dedicated = draw(st.integers(min_value=0, max_value=3))
    rate = draw(st.sampled_from([0.0, 0.2, 0.5, 0.7]))
    kind = draw(st.sampled_from(["moon", "hadoop", "late"]))
    hybrid = kind == "moon" and draw(st.booleans()) and n_dedicated > 0
    scheduler = SchedulerConfig(
        kind=kind,
        tracker_expiry_interval=draw(st.sampled_from([120.0, 600.0, 1800.0])),
        suspension_interval=60.0,
        hybrid_aware=hybrid,
    )
    cfg = SystemConfig(
        cluster=ClusterConfig(n_volatile=n_volatile, n_dedicated=n_dedicated),
        trace=TraceConfig(unavailability_rate=rate),
        scheduler=scheduler,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )
    spec = sleep_spec(
        map_seconds=draw(st.sampled_from([1.0, 20.0, 120.0])),
        reduce_seconds=draw(st.sampled_from([1.0, 30.0])),
        n_maps=draw(st.integers(min_value=1, max_value=24)),
        n_reduces=draw(st.integers(min_value=0, max_value=4)),
    )
    return cfg, spec


class TestSystemInvariants:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(args=system_and_job())
    def test_property_runs_terminate_in_legal_state(self, args):
        cfg, spec = args
        system = moon_system(cfg)
        result = system.run_job(spec, time_limit=4 * 3600.0)

        # 1. Legal terminal state, or a legal at-limit state: RUNNING,
        # or COMMITTING (paper IV-A holds the commit until the output
        # reaches its factor — unsatisfiable on a cluster with no
        # dedicated node, so the job legitimately waits forever).
        assert result.state in ("succeeded", "failed", "running", "committing")

        # 2. Accounting self-consistency.
        m = result.metrics
        assert m.duplicated_tasks >= 0
        assert m.speculative_launched >= 0
        assert m.map_reexecutions >= 0
        assert m.fetch_failures >= 0
        if result.succeeded:
            assert result.elapsed is not None and result.elapsed >= 0
            assert m.profile.avg_map_time >= 0

        # 3. No attempt left alive once the job succeeds: reduces must
        # all be complete, and leftover map re-executions (possible
        # when a transiently-lost output was refetched elsewhere) are
        # killed at job completion.
        if result.succeeded:
            job = system.jobtracker.jobs[0]
            for task in job.reduces:
                assert task.complete
            if job.n_reduces == 0:
                for task in job.maps:
                    assert task.complete
            for task in job.tasks:
                assert not task.live_attempts()

        # 4. The clock advanced monotonically and the queue is sane.
        assert system.sim.now >= 0
        assert system.sim.pending_foreground_events() >= 0

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(args=system_and_job())
    def test_property_rerun_is_deterministic(self, args):
        cfg, spec = args
        r1 = moon_system(cfg).run_job(spec, time_limit=2 * 3600.0)
        r2 = moon_system(cfg).run_job(spec, time_limit=2 * 3600.0)
        assert r1.state == r2.state
        assert r1.elapsed == r2.elapsed
        assert r1.metrics.duplicated_tasks == r2.metrics.duplicated_tasks
