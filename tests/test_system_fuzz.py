"""Whole-system fuzzing: random configurations must never wedge.

Model-checking-lite for the full stack: across randomly drawn cluster
shapes, volatility levels and workload geometries, a run must terminate
(no event-loop hangs), end in a legal state, and keep its accounting
self-consistent.  These invariants catch the class of bugs unit tests
miss — cross-layer interactions under ugly parameter combinations.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (
    ClusterConfig,
    DetectorConfig,
    SchedulerConfig,
    SystemConfig,
    TraceConfig,
)
from repro.core import moon_system
from repro.workloads import sleep_spec

HOUR = 3600.0


@st.composite
def system_and_job(draw):
    n_volatile = draw(st.integers(min_value=2, max_value=16))
    n_dedicated = draw(st.integers(min_value=0, max_value=3))
    rate = draw(st.sampled_from([0.0, 0.2, 0.5, 0.7]))
    kind = draw(st.sampled_from(["moon", "hadoop", "late"]))
    hybrid = kind == "moon" and draw(st.booleans()) and n_dedicated > 0
    scheduler = SchedulerConfig(
        kind=kind,
        tracker_expiry_interval=draw(st.sampled_from([120.0, 600.0, 1800.0])),
        suspension_interval=60.0,
        hybrid_aware=hybrid,
    )
    cfg = SystemConfig(
        cluster=ClusterConfig(n_volatile=n_volatile, n_dedicated=n_dedicated),
        trace=TraceConfig(unavailability_rate=rate),
        scheduler=scheduler,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )
    spec = sleep_spec(
        map_seconds=draw(st.sampled_from([1.0, 20.0, 120.0])),
        reduce_seconds=draw(st.sampled_from([1.0, 30.0])),
        n_maps=draw(st.integers(min_value=1, max_value=24)),
        n_reduces=draw(st.integers(min_value=0, max_value=4)),
    )
    return cfg, spec


class TestSystemInvariants:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(args=system_and_job())
    def test_property_runs_terminate_in_legal_state(self, args):
        cfg, spec = args
        system = moon_system(cfg)
        result = system.run_job(spec, time_limit=4 * 3600.0)

        # 1. Legal terminal state, or a legal at-limit state: RUNNING,
        # or COMMITTING (paper IV-A holds the commit until the output
        # reaches its factor — unsatisfiable on a cluster with no
        # dedicated node, so the job legitimately waits forever).
        assert result.state in ("succeeded", "failed", "running", "committing")

        # 2. Accounting self-consistency.
        m = result.metrics
        assert m.duplicated_tasks >= 0
        assert m.speculative_launched >= 0
        assert m.map_reexecutions >= 0
        assert m.fetch_failures >= 0
        if result.succeeded:
            assert result.elapsed is not None and result.elapsed >= 0
            assert m.profile.avg_map_time >= 0

        # 3. No attempt left alive once the job succeeds: reduces must
        # all be complete, and leftover map re-executions (possible
        # when a transiently-lost output was refetched elsewhere) are
        # killed at job completion.
        if result.succeeded:
            job = system.jobtracker.jobs[0]
            for task in job.reduces:
                assert task.complete
            if job.n_reduces == 0:
                for task in job.maps:
                    assert task.complete
            for task in job.tasks:
                assert not task.live_attempts()

        # 4. The clock advanced monotonically and the queue is sane.
        assert system.sim.now >= 0
        assert system.sim.pending_foreground_events() >= 0

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(args=system_and_job())
    def test_property_rerun_is_deterministic(self, args):
        cfg, spec = args
        r1 = moon_system(cfg).run_job(spec, time_limit=2 * 3600.0)
        r2 = moon_system(cfg).run_job(spec, time_limit=2 * 3600.0)
        assert r1.state == r2.state
        assert r1.elapsed == r2.elapsed
        assert r1.metrics.duplicated_tasks == r2.metrics.duplicated_tasks


@st.composite
def service_under_pressure(draw):
    """A service configuration combining the four control layers:
    SLO-aware preemption, dedicated-tier autoscaling, node churn and
    (possibly honest) failure detection."""
    from dataclasses import replace

    from repro.config import moon_scheduler_config
    from repro.service import AutoscaleConfig, PreemptConfig, ServiceConfig

    detector = draw(
        st.sampled_from(
            [
                DetectorConfig(),  # oracle
                DetectorConfig(
                    mode="timeout",
                    silences_per_hour=6.0,
                    grace_period=30.0,
                ),
                DetectorConfig(
                    mode="timeout",
                    silences_per_hour=0.0,
                    grace_period=120.0,
                ),
                DetectorConfig(
                    mode="adaptive",
                    silences_per_hour=12.0,
                    mean_silence=90.0,
                    grace_period=0.0,
                ),
            ]
        )
    )
    cfg = SystemConfig(
        cluster=ClusterConfig(
            n_volatile=draw(st.integers(min_value=2, max_value=8)),
            n_dedicated=draw(st.integers(min_value=1, max_value=3)),
        ),
        trace=TraceConfig(
            unavailability_rate=draw(st.sampled_from([0.0, 0.3, 0.6]))
        ),
        scheduler=replace(moon_scheduler_config(), dedicated_primary=True),
        detector=detector,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )
    service_cfg = ServiceConfig(
        policy=draw(st.sampled_from(["fifo", "edf"])),
        max_in_flight=draw(st.integers(min_value=1, max_value=4)),
        max_queue_depth=draw(st.sampled_from([2, 8, 64])),
        tenant_quota=draw(st.sampled_from([None, 1, 2])),
        horizon=1 * HOUR,
        drain_limit=4 * HOUR,
        preempt=PreemptConfig(
            mode=draw(st.sampled_from(["off", "deprioritise", "pause"])),
            interval=draw(st.sampled_from([10.0, 30.0])),
            slack_threshold=draw(st.sampled_from([60.0, 600.0])),
            victim_slack=draw(st.sampled_from([0.0, 600.0])),
            escalate_rounds=draw(st.integers(min_value=0, max_value=2)),
        ),
        admission_prices=draw(st.booleans()),
        autoscale=draw(
            st.sampled_from(
                [
                    None,
                    AutoscaleConfig(
                        policy="reactive",
                        interval=20.0,
                        min_dedicated=1,
                        max_dedicated=4,
                        up_cooldown=20.0,
                        down_cooldown=40.0,
                    ),
                ]
            )
        ),
    )
    return cfg, service_cfg


class TestServicePressureInvariants:
    """Preemption + autoscaling + churn + detector fuzz: the control
    loops acting on the same jobs must never wedge the service or
    corrupt its accounting — in particular a pause racing a
    dedicated-node drain must not deadlock the decommission gate, and
    a grace-period requeue must never lose or double-count work."""

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(args=service_under_pressure())
    def test_property_combined_control_loops_never_wedge(self, args):
        from repro.service import bursty_arrivals, sleep_catalog

        cfg, service_cfg = args
        system = moon_system(cfg)
        arrivals = bursty_arrivals(
            system.sim.rng("service/arrivals"),
            bursts_per_hour=4.0,
            burst_size_mean=6.0,
            horizon=service_cfg.horizon,
            catalog=sleep_catalog(),
        )
        report = system.run_service(
            arrivals, service_cfg, pattern="bursty"
        )
        system.jobtracker.stop()
        system.namenode.stop()

        # Terminal accounting always adds up.
        o = report.overall
        assert o.arrived == len(arrivals)
        assert (
            o.completed + o.failed + o.rejected + o.dropped + o.unserved
            == o.arrived
        )
        # Paused-then-resumed work is never both lost *and* counted:
        # every preemption pause has a matching resume unless the run
        # stopped at the limit with the job still in flight.
        counts = report.preempt_counts
        assert counts["resume"] <= counts["pause"]
        if o.unserved == 0:
            assert counts["resume"] == counts["pause"]
        # The decommission gate cleared: no tracker is still draining
        # once the stream has fully drained (a pause racing a drain —
        # or a node under suspicion — must not wedge the gate open
        # forever).
        if o.unserved == 0 and report.scale_events:
            assert not system.cluster.draining_nodes()
        # No ghost work anywhere in the registry.
        for tracker in system.jobtracker.trackers.values():
            for attempt in tracker.attempts:
                assert not attempt.task.job.finished
        # Honest-detector accounting: wasted work only accrues, the
        # oracle never wastes anything, and a grace-period requeue
        # never loses or double-counts an attempt — every task of a
        # completed job has exactly one succeeded copy and no survivor.
        assert report.wasted_work >= 0.0
        if not cfg.detector.honest:
            assert report.false_positives == 0
            assert report.requeues == 0
            assert report.wasted_work == 0.0
        for job in system.jobtracker.jobs:
            if job.state.value != "succeeded":
                continue
            for task in job.tasks:
                succeeded = sum(
                    1
                    for a in task.attempts
                    if a.state.value == "succeeded"
                )
                assert succeeded == (1 if task.complete else 0)
                assert not task.live_attempts()

    def test_pause_racing_dedicated_drain_completes(self):
        """Deterministic drain-race: pause a job whose attempts run on
        a dedicated node, decommission that node mid-pause, and the
        gate must clear (held work is reconciled at resume, its tasks
        re-queued, the job still finishes)."""
        from dataclasses import replace

        from repro.config import moon_scheduler_config

        cfg = SystemConfig(
            cluster=ClusterConfig(n_volatile=0, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=0.0),
            scheduler=replace(
                moon_scheduler_config(), dedicated_primary=True
            ),
            seed=5,
        )
        system = moon_system(cfg)
        jt = system.jobtracker
        job = jt.submit(sleep_spec(300.0, 30.0, n_maps=6, n_reduces=1))
        system.sim.run(until=30.0)
        victims = [
            t.node_id
            for t in jt.trackers.values()
            if t.node.is_dedicated and t.attempts
        ]
        assert victims, "maps must be running on the dedicated tier"
        victim = victims[0]
        jt.pause_job(job)
        held_on_victim = [
            a for a in job.held_attempts if a.node_id == victim
        ]
        assert held_on_victim
        system.cluster.decommission_dedicated(victim)
        # The gate clears at the next heartbeat ticks even though the
        # job still holds (released) attempts on the draining node.
        system.sim.run(until=120.0)
        assert victim not in jt.trackers
        assert not system.cluster.draining_nodes()
        # Resume reconciles: the orphaned attempts die, their tasks
        # re-queue, and the job completes on the surviving node.
        jt.resume_job(job)
        system.sim.run(until=6 * HOUR, stop_when=lambda: job.finished)
        assert job.state.value == "succeeded"
        assert all(a.finished for a in held_on_victim)
        for task in job.tasks:
            assert not task.live_attempts()

    def test_drain_gate_clears_under_suspicion(self):
        """Deterministic churn-under-suspicion race: a volatile node
        goes silent (the honest detector suspects it and the grace
        requeue hands its work back) while a dedicated node drains.
        The decommission gate must still clear, and reconciliation
        must leave exactly one succeeded copy per task."""
        from dataclasses import replace

        from repro.cluster import Cluster, Node, NodeKind
        from repro.config import NodeSpec, moon_scheduler_config
        from repro.core import MoonSystem
        from repro.traces import AvailabilityTrace

        cfg = SystemConfig(
            cluster=ClusterConfig(n_volatile=2, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=0.0),
            scheduler=replace(
                moon_scheduler_config(), dedicated_primary=True
            ),
            detector=DetectorConfig(
                mode="timeout", silences_per_hour=0.0, grace_period=60.0
            ),
            seed=11,
        )
        spec = NodeSpec()
        nodes = [
            Node(0, NodeKind.DEDICATED, spec),
            Node(1, NodeKind.DEDICATED, spec),
            Node(2, NodeKind.VOLATILE, spec,
                 AvailabilityTrace([(50.0, 900.0)], 100000.0)),
            Node(3, NodeKind.VOLATILE, spec),
        ]
        system = MoonSystem(cfg, cluster=Cluster(nodes))
        jt = system.jobtracker
        job = jt.submit(sleep_spec(400.0, 10.0, n_maps=8, n_reduces=1))
        # Past the suspicion trip (50 + 60 + 3) and the grace requeue
        # (trip + 60): node 2's work is abandoned while it stays dark.
        system.sim.run(until=200.0)
        assert jt.trackers[2].suspected
        system.cluster.decommission_dedicated(1)
        system.sim.run(until=6 * HOUR, stop_when=lambda: job.finished)
        assert job.state.value == "succeeded"
        assert 1 not in jt.trackers
        assert not system.cluster.draining_nodes()
        for task in job.tasks:
            assert task.complete
            assert (
                sum(
                    1
                    for a in task.attempts
                    if a.state.value == "succeeded"
                )
                == 1
            )
            assert not task.live_attempts()
