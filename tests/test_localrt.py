"""Tests for the functional MapReduce engine (S12)."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LocalRuntimeError
from repro.localrt import (
    FaultPlan,
    LocalRunner,
    MapReduceJob,
    default_partitioner,
    group_by_key,
    partition,
    run_mapreduce,
    split_records,
    split_text,
)

TEXT = """the moon shines over the volunteer grid
the grid computes while owners sleep
moon over hadoop hadoop over moon"""


def wc_map(_k, line):
    for word in line.split():
        yield (word, 1)


def wc_reduce(word, counts):
    yield (word, sum(counts))


class TestIo:
    def test_split_records_covers_everything_once(self):
        records = [(i, i * i) for i in range(10)]
        splits = split_records(records, 3)
        assert [len(s) for s in splits] == [4, 3, 3]
        flat = [r for s in splits for r in s]
        assert flat == records

    def test_split_more_ways_than_records(self):
        splits = split_records([(0, "x")], 4)
        assert sum(len(s) for s in splits) == 1
        assert len(splits) == 4

    def test_split_text_lines(self):
        splits = split_text(TEXT, 2)
        assert sum(len(s) for s in splits) == 3

    def test_partition_respects_partitioner(self):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        parts = partition(pairs, 2, default_partitioner)
        # Same key always lands in the same partition.
        part_of_a = [i for i, p in enumerate(parts) if ("a", 1) in p]
        assert ("a", 3) in parts[part_of_a[0]]

    def test_partition_bad_index_rejected(self):
        with pytest.raises(LocalRuntimeError):
            partition([("a", 1)], 2, lambda k, n: 7)

    def test_group_by_key(self):
        g = group_by_key([("x", 1), ("y", 2), ("x", 3)])
        assert g == {"x": [1, 3], "y": [2]}


class TestWordCount:
    def test_matches_counter(self):
        records = [(i, line) for i, line in enumerate(TEXT.splitlines())]
        out = run_mapreduce(wc_map, wc_reduce, records, n_reduces=3)
        expected = Counter(TEXT.split())
        assert out.as_dict() == dict(expected)

    def test_single_reduce(self):
        records = [(0, "a b a")]
        out = run_mapreduce(wc_map, wc_reduce, records, n_reduces=1)
        assert out.as_dict() == {"a": 2, "b": 1}

    def test_combiner_preserves_result(self):
        records = [(i, line) for i, line in enumerate(TEXT.splitlines())]
        with_combiner = run_mapreduce(
            wc_map, wc_reduce, records, n_reduces=2, combiner=wc_reduce
        )
        without = run_mapreduce(wc_map, wc_reduce, records, n_reduces=2)
        assert with_combiner.as_dict() == without.as_dict()

    def test_threaded_equals_sequential(self):
        records = [(i, line) for i, line in enumerate(TEXT.splitlines() * 10)]
        seq = run_mapreduce(wc_map, wc_reduce, records, n_reduces=3)
        par = run_mapreduce(
            wc_map, wc_reduce, records, n_reduces=3, max_workers=4
        )
        assert seq.pairs == par.pairs


class TestFaults:
    def test_faulty_run_still_correct(self):
        records = [(i, line) for i, line in enumerate(TEXT.splitlines() * 5)]
        out = run_mapreduce(
            wc_map,
            wc_reduce,
            records,
            n_reduces=2,
            faults=FaultPlan(map_failure_rate=0.3, reduce_failure_rate=0.3,
                             seed=7),
        )
        expected = {k: v * 5 for k, v in Counter(TEXT.split()).items()}
        assert out.as_dict() == expected
        assert out.map_failures + out.reduce_failures > 0
        assert out.map_attempts > 8  # retries happened

    def test_hopeless_faults_exhaust_attempt_budget(self):
        records = [(0, "a")]
        with pytest.raises(LocalRuntimeError):
            run_mapreduce(
                wc_map,
                wc_reduce,
                records,
                faults=FaultPlan(map_failure_rate=0.999999, seed=1),
            )

    def test_bad_rates_rejected(self):
        with pytest.raises(LocalRuntimeError):
            FaultPlan(map_failure_rate=1.5)


class TestValidation:
    def test_bad_job_rejected(self):
        job = MapReduceJob(map_fn=wc_map, reduce_fn=wc_reduce, n_reduces=0)
        with pytest.raises(LocalRuntimeError):
            LocalRunner().run(job, [(0, "x")])

    def test_non_callable_rejected(self):
        job = MapReduceJob(map_fn=None, reduce_fn=wc_reduce)
        with pytest.raises(LocalRuntimeError):
            LocalRunner().run(job, [(0, "x")])


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        words=st.lists(
            st.text(alphabet="abcde", min_size=1, max_size=3),
            min_size=0,
            max_size=60,
        ),
        n_reduces=st.integers(min_value=1, max_value=5),
        n_maps=st.integers(min_value=1, max_value=6),
    )
    def test_property_wordcount_equals_counter(self, words, n_reduces, n_maps):
        text = " ".join(words)
        records = [(0, text)] if text else []
        if not records:
            return
        out = run_mapreduce(
            wc_map, wc_reduce, records, n_reduces=n_reduces, n_maps=n_maps
        )
        assert out.as_dict() == dict(Counter(words))

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=-100, max_value=100),
                        min_size=1, max_size=50)
    )
    def test_property_sum_by_parity(self, values):
        records = [(i, v) for i, v in enumerate(values)]

        def m(_k, v):
            yield (v % 2, v)

        def r(k, vs):
            yield (k, sum(vs))

        out = run_mapreduce(m, r, records, n_reduces=2)
        expected = {}
        for v in values:
            expected[v % 2] = expected.get(v % 2, 0) + v
        assert out.as_dict() == expected
