"""Tests for the shared experiment harness (memoisation, policies)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    RATES,
    SCHED_POLICIES,
    hadoop_policy,
    late_policy,
    mean_counter,
    mean_elapsed,
    moon_policy,
)
from repro.experiments import harness
from repro.experiments.harness import run_cell
from repro.experiments.scale import Scale
from repro.workloads import sleep_spec

TINY = Scale(
    n_volatile=8,
    n_dedicated=2,
    sort_maps=16,
    wc_maps=16,
    data_factor=0.25,
    seeds=(1,),
    time_limit=4 * 3600.0,
)


def tiny_spec():
    return sleep_spec(5.0, 3.0, n_maps=16, n_reduces=2)


class TestPolicies:
    def test_paper_legend_complete(self):
        assert list(SCHED_POLICIES) == [
            "Hadoop10Min", "Hadoop5Min", "Hadoop1Min", "MOON", "MOON-Hybrid",
        ]

    def test_rates_are_paper_rates(self):
        assert RATES == (0.1, 0.3, 0.5)

    def test_hadoop_policy_minutes(self):
        p = hadoop_policy(5)
        assert p.kind == "hadoop"
        assert p.tracker_expiry_interval == 300.0
        assert not p.hybrid_aware

    def test_moon_policy_intervals(self):
        p = moon_policy(True)
        assert p.kind == "moon"
        assert p.suspension_interval == 60.0
        assert p.tracker_expiry_interval == 1800.0
        assert p.hybrid_aware

    def test_late_policy(self):
        assert late_policy().kind == "late"


class TestRunCell:
    def test_memoised_across_calls(self):
        r1 = run_cell(TINY, tiny_spec(), 0.2, moon_policy(True))
        r2 = run_cell(TINY, tiny_spec(), 0.2, moon_policy(True))
        assert r1 is r2  # same structural key -> cached list object

    def test_different_rate_not_shared(self):
        r1 = run_cell(TINY, tiny_spec(), 0.2, moon_policy(True))
        r3 = run_cell(TINY, tiny_spec(), 0.0, moon_policy(True))
        assert r1 is not r3

    def test_results_per_seed(self):
        rs = run_cell(TINY, tiny_spec(), 0.0, moon_policy(True))
        assert len(rs) == len(TINY.seeds)
        assert all(r.succeeded for r in rs)

    def test_clear_cache_forgets_results(self):
        r1 = run_cell(TINY, tiny_spec(), 0.2, moon_policy(True))
        assert harness.cache_size() >= 1
        harness.clear_cache()
        assert harness.cache_size() == 0
        r2 = run_cell(TINY, tiny_spec(), 0.2, moon_policy(True))
        assert r1 is not r2  # re-run, not the cached object

    def test_cache_is_bounded_lru(self, monkeypatch):
        harness.clear_cache()
        monkeypatch.setattr(harness, "CACHE_MAX_ENTRIES", 2)
        run_cell(TINY, tiny_spec(), 0.0, moon_policy(True))
        first = run_cell(TINY, tiny_spec(), 0.1, moon_policy(True))
        # Touch the first-inserted entry so it becomes most-recent...
        run_cell(TINY, tiny_spec(), 0.0, moon_policy(True))
        # ...then overflow: the *least recently used* (0.1) is evicted.
        run_cell(TINY, tiny_spec(), 0.2, moon_policy(True))
        assert harness.cache_size() == 2
        assert run_cell(TINY, tiny_spec(), 0.1, moon_policy(True)) is not first
        harness.clear_cache()


class TestAggregation:
    def test_mean_elapsed_skips_dnf(self):
        class R:
            def __init__(self, e, ok):
                self.elapsed, self.succeeded = e, ok

        assert mean_elapsed([R(10.0, True), R(None, False)]) == 10.0
        assert mean_elapsed([R(None, False)]) is None

    def test_mean_counter(self):
        class M:
            duplicated_tasks = 4

        class R:
            metrics = M()

        assert mean_counter([R(), R()], "duplicated_tasks") == 4.0
        assert mean_counter([], "duplicated_tasks") == 0.0
