"""Tests for pluggable outage-length distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TraceConfig
from repro.errors import ConfigError, TraceError
from repro.traces import (
    DISTRIBUTIONS,
    distribution_names,
    generate_trace,
    make_distribution,
)


RNG = lambda: np.random.default_rng(7)  # noqa: E731


class TestRegistry:
    def test_all_families_registered(self):
        assert set(distribution_names()) == {
            "normal", "lognormal", "weibull", "exponential", "pareto",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(TraceError, match="unknown distribution"):
            make_distribution("zipf", 400.0, 100.0)

    def test_names_match_classes(self):
        for name, cls in DISTRIBUTIONS.items():
            assert cls.name == name


class TestCalibration:
    """Every family must honour the configured mean (its one contract)."""

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_sample_mean_near_target(self, name):
        dist = make_distribution(name, 409.0, 100.0)
        draws = dist.sample(RNG(), 20_000)
        # Pareto's heavy tail converges slowly; 10% tolerance for all.
        assert draws.mean() == pytest.approx(409.0, rel=0.10)

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_minimum_enforced(self, name):
        dist = make_distribution(name, 409.0, 300.0, minimum=50.0)
        draws = dist.sample(RNG(), 5_000)
        assert (draws >= 50.0).all()

    def test_normal_matches_sigma(self):
        dist = make_distribution("normal", 409.0, 100.0)
        draws = dist.sample(RNG(), 20_000)
        assert draws.std() == pytest.approx(100.0, rel=0.05)

    def test_lognormal_matches_sigma(self):
        dist = make_distribution("lognormal", 409.0, 100.0)
        draws = dist.sample(RNG(), 50_000)
        assert draws.std() == pytest.approx(100.0, rel=0.10)

    def test_weibull_matches_sigma(self):
        dist = make_distribution("weibull", 409.0, 100.0)
        draws = dist.sample(RNG(), 50_000)
        assert draws.std() == pytest.approx(100.0, rel=0.10)

    def test_exponential_ignores_sigma(self):
        dist = make_distribution("exponential", 409.0, 5.0)
        draws = dist.sample(RNG(), 50_000)
        assert draws.std() == pytest.approx(409.0, rel=0.10)  # CV = 1

    def test_zero_sigma_degenerates(self):
        for name in ("normal", "lognormal", "weibull"):
            dist = make_distribution(name, 409.0, 0.0)
            draws = dist.sample(RNG(), 100)
            assert np.allclose(draws, 409.0)

    def test_empty_sample(self):
        dist = make_distribution("normal", 409.0, 100.0)
        assert dist.sample(RNG(), 0).size == 0

    def test_negative_count_rejected(self):
        with pytest.raises(TraceError):
            make_distribution("normal", 409.0, 100.0).sample(RNG(), -1)


class TestValidation:
    def test_bad_mean(self):
        with pytest.raises(TraceError):
            make_distribution("normal", 0.0, 1.0)

    def test_bad_sigma(self):
        with pytest.raises(TraceError):
            make_distribution("normal", 400.0, -1.0)

    def test_bad_minimum(self):
        with pytest.raises(TraceError):
            make_distribution("normal", 400.0, 10.0, minimum=500.0)


class TestTraceConfigIntegration:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_generate_trace_with_each_family(self, name):
        cfg = TraceConfig(unavailability_rate=0.3, distribution=name)
        trace = generate_trace(cfg, RNG())
        # The generator rescales lengths, so the rate is exact.
        assert trace.unavailability_rate() == pytest.approx(0.3, abs=1e-6)

    def test_unknown_distribution_rejected_by_config(self):
        with pytest.raises(ConfigError):
            TraceConfig(distribution="cauchy").validate()


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        mean=st.floats(min_value=60.0, max_value=2000.0),
        cv=st.floats(min_value=0.05, max_value=0.8),
        name=st.sampled_from(sorted(DISTRIBUTIONS)),
    )
    def test_property_draws_positive(self, mean, cv, name):
        dist = make_distribution(name, mean, mean * cv, minimum=1.0)
        draws = dist.sample(np.random.default_rng(0), 200)
        assert (draws >= 1.0).all()
        assert np.isfinite(draws).all()
