"""Configuration validation tests."""

from __future__ import annotations

import pytest

from repro.config import (
    ClusterConfig,
    DfsConfig,
    NodeSpec,
    SchedulerConfig,
    ShuffleConfig,
    SystemConfig,
    TraceConfig,
    hadoop_scheduler_config,
    moon_scheduler_config,
)
from repro.errors import ConfigError


class TestDefaultsMatchPaper:
    def test_cluster_is_60_plus_6(self):
        cfg = ClusterConfig()
        assert cfg.n_volatile == 60 and cfg.n_dedicated == 6
        assert cfg.n_nodes == 66

    def test_node_has_2_map_2_reduce_slots(self):
        spec = NodeSpec()
        assert spec.map_slots == 2 and spec.reduce_slots == 2

    def test_trace_mean_outage_409s(self):
        assert TraceConfig().mean_outage == 409.0
        assert TraceConfig().duration == 8 * 3600.0

    def test_moon_intervals(self):
        cfg = moon_scheduler_config()
        assert cfg.suspension_interval == 60.0
        assert cfg.tracker_expiry_interval == 1800.0
        assert cfg.kind == "moon"

    def test_hadoop_default_expiry_10min(self):
        cfg = hadoop_scheduler_config()
        assert cfg.tracker_expiry_interval == 600.0
        assert cfg.kind == "hadoop"
        assert cfg.hybrid_aware is False

    def test_moon_two_phase_defaults(self):
        cfg = SchedulerConfig()
        assert cfg.homestretch_threshold_pct == 20.0
        assert cfg.homestretch_replicas == 2
        assert cfg.speculative_cap_fraction == 0.20

    def test_dfs_defaults(self):
        cfg = DfsConfig()
        assert cfg.default_reliable_rf == (1, 3)
        assert cfg.availability_goal == 0.9
        assert cfg.node_hibernate_interval < cfg.node_expiry_interval

    def test_system_config_validates(self):
        SystemConfig().validate()


class TestValidation:
    def test_bad_node_spec(self):
        with pytest.raises(ConfigError):
            NodeSpec(cpu_scale=0).validate()
        with pytest.raises(ConfigError):
            NodeSpec(disk_mbps=-1).validate()

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_volatile=0, n_dedicated=0).validate()

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigError):
            TraceConfig(unavailability_rate=1.0).validate()
        with pytest.raises(ConfigError):
            TraceConfig(unavailability_rate=-0.1).validate()

    def test_dfs_hibernate_must_be_short(self):
        with pytest.raises(ConfigError):
            DfsConfig(
                node_hibernate_interval=600.0, node_expiry_interval=600.0
            ).validate()

    def test_dfs_zero_replica_rf_rejected(self):
        with pytest.raises(ConfigError):
            DfsConfig(default_reliable_rf=(0, 0)).validate()

    def test_moon_suspension_lt_expiry(self):
        with pytest.raises(ConfigError):
            SchedulerConfig(
                kind="moon",
                suspension_interval=600.0,
                tracker_expiry_interval=600.0,
            ).validate()

    def test_unknown_scheduler_kind(self):
        with pytest.raises(ConfigError):
            SchedulerConfig(kind="fifo").validate()

    def test_unknown_network_model(self):
        with pytest.raises(ConfigError):
            SystemConfig(network_model="quantum").validate()

    def test_shuffle_validation(self):
        with pytest.raises(ConfigError):
            ShuffleConfig(parallel_copies=0).validate()

    def test_with_replaces_fields(self):
        cfg = SystemConfig().with_(seed=7)
        assert cfg.seed == 7
        assert cfg.cluster.n_volatile == 60
