"""Tests for the figure-shaped text report helpers."""

from __future__ import annotations

from repro.metrics import comparison_rows, series_table


class TestSeriesTable:
    def test_shape(self):
        out = series_table(
            "FIG X", "rate", [0.1, 0.5],
            {"MOON": [1.0, 2.0], "Hadoop": [3.0, 4.0]},
        )
        lines = out.splitlines()
        assert lines[0] == "FIG X"
        assert set(lines[1]) == {"="}
        assert "rate" in lines[2]
        assert any("MOON" in l for l in lines)
        assert out.endswith("(values in s)")

    def test_dnf_rendered_as_dashes(self):
        out = series_table("T", "x", [1], {"p": [None]})
        assert "--" in out

    def test_custom_format_and_unit(self):
        out = series_table(
            "T", "x", [1], {"p": [42.0]}, unit="tasks", fmt="{:10.0f}"
        )
        assert "42" in out and "42.0" not in out
        assert "(values in tasks)" in out

    def test_no_unit_suffix(self):
        out = series_table("T", "x", [1], {"p": [1.0]}, unit="")
        assert "values in" not in out

    def test_column_alignment(self):
        out = series_table(
            "T", "x", [0.1, 0.3, 0.5],
            {"a": [1.0, 22.0, 333.0], "bbbb": [4444.0, 5.0, 6.0]},
        )
        rows = [l for l in out.splitlines() if l.startswith(("a", "bbbb"))]
        assert len({len(r) for r in rows}) == 1


class TestComparisonRows:
    def test_paper_vs_measured(self):
        rows = comparison_rows(
            {"speedup": 3.0}, {"speedup": 2.5}, "fig7 sort D6"
        )
        assert rows[0].startswith("fig7")
        assert "paper=3" in rows[1] and "measured=2.5" in rows[1]

    def test_missing_measurement(self):
        rows = comparison_rows({"x": 1.0}, {}, "w")
        assert "measured=--" in rows[1]
