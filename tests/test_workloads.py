"""Tests for workload specs (Table I + extensions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ConfigError
from repro.dfs import ReplicationFactor
from repro.workloads import (
    JobSpec,
    grep_spec,
    random_spec,
    scaled,
    sleep_like_sort,
    sleep_like_wordcount,
    sleep_spec,
    sort_spec,
    wordcount_spec,
)


class TestTable1Configurations:
    def test_sort_matches_table_1(self):
        s = sort_spec()
        assert s.n_maps == 384
        assert s.input_mb == pytest.approx(24 * 1024)  # 24 GB
        assert s.n_reduces is None and s.reduces_per_slot == 0.9
        assert s.map_output_mb == s.map_input_mb  # selectivity 1

    def test_wordcount_matches_table_1(self):
        w = wordcount_spec()
        assert w.n_maps == 320
        assert w.input_mb == pytest.approx(20 * 1024)  # 20 GB
        assert w.n_reduces == 20
        assert w.map_output_mb < w.map_input_mb  # tiny intermediate

    def test_sort_resolves_reduces_from_slots(self):
        s = sort_spec()
        assert s.resolve_reduces(132) == int(0.9 * 132)

    def test_explicit_reduces_wins(self):
        w = wordcount_spec()
        assert w.resolve_reduces(1000) == 20

    def test_sort_output_is_passthrough(self):
        s = sort_spec()
        n_red = 100
        total_out = s.resolve_reduce_output_mb(n_red) * n_red
        assert total_out == pytest.approx(s.input_mb)

    def test_sleep_produces_negligible_data(self):
        s = sleep_spec(21.0, 90.0, n_maps=10, n_reduces=2)
        assert s.map_output_mb < 1.0
        assert s.intermediate_reliable is True  # paper VI-A setup
        assert s.intermediate_rf == ReplicationFactor(1, 1)

    def test_sleep_presets_use_table2_times(self):
        assert sleep_like_sort().map_cpu_seconds == 21.0
        assert sleep_like_wordcount().map_cpu_seconds == 100.0

    def test_grep_single_reduce(self):
        g = grep_spec()
        assert g.n_reduces == 1
        assert g.map_output_mb < 1.0


class TestSpecMechanics:
    def test_partition_mb(self):
        s = sort_spec()
        assert s.partition_mb(64) == pytest.approx(1.0)
        assert s.partition_mb(0) == 0.0

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            JobSpec(name="x", n_maps=0, n_reduces=1).validate()
        with pytest.raises(ConfigError):
            JobSpec(name="x", n_maps=1, n_reduces=None).validate()
        with pytest.raises(ConfigError):
            JobSpec(name="x", n_maps=1, n_reduces=1, map_cpu_seconds=-1).validate()

    def test_scaled_shrinks_data_but_not_compute(self):
        """Scaling cuts data volume only: task durations must stay in
        the paper's regime relative to the outage process (DESIGN.md 5)."""
        s = scaled(sort_spec(), 0.25)
        assert s.map_input_mb == pytest.approx(16.0)
        assert s.map_output_mb == pytest.approx(16.0)
        assert s.map_cpu_seconds == sort_spec().map_cpu_seconds
        assert s.reduce_cpu_seconds == sort_spec().reduce_cpu_seconds
        s.validate()

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            scaled(sort_spec(), 0.0)

    def test_random_specs_are_valid(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            random_spec(rng).validate()
