"""CLI tests — parser wiring and the fast commands end-to-end.

The figure commands re-run whole experiment grids, so they are
exercised by the benchmark suite; here we cover everything that runs
in milliseconds-to-seconds plus the parser surface of the rest.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if hasattr(a, "choices") and a.choices
        )
        assert set(sub.choices) >= {
            "fig1", "fig4", "fig6", "fig7", "table1", "table2",
            "ablations", "run", "serve", "trace", "availability",
            "estimate",
        }

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "sort"
        assert args.scheduler == "moon"
        assert args.rate == 0.3

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheduler", "yarn"])

    def test_trace_needs_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_serve_defaults(self):
        # Mode-dependent flags parse as None; cmd_serve resolves them
        # (fifo/4 normally, edf/8 under --autoscale).
        args = build_parser().parse_args(["serve"])
        assert args.pattern == "poisson"
        assert args.policy is None
        assert args.max_in_flight is None
        assert args.autoscale is None

    def test_serve_default_resolution_by_mode(self):
        from repro.cli.commands import _resolve_serve_defaults

        args = build_parser().parse_args(["serve"])
        _resolve_serve_defaults(args)
        assert args.policy == "fifo"
        assert args.max_in_flight == 4
        assert args.volatile == 30

        args = build_parser().parse_args(["serve", "--autoscale", "all"])
        _resolve_serve_defaults(args)
        assert args.policy == "edf"
        assert args.max_in_flight == 8
        assert args.volatile == 12

        # Explicit flags always win over mode defaults.
        args = build_parser().parse_args(
            ["serve", "--autoscale", "all", "--policy", "sjf"]
        )
        _resolve_serve_defaults(args)
        assert args.policy == "sjf"

    def test_serve_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "lifo"])

    def test_replay_registered_and_requires_trace(self):
        args = build_parser().parse_args(["replay", "--trace", "t.csv"])
        assert args.policy == "fifo" and args.scale is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay"])


class TestFastCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "24GB" in out and "384" in out
        assert "word count" in out and "20" in out

    def test_availability_reproduces_paper_numbers(self, capsys):
        assert main(["availability"]) == 0
        out = capsys.readouterr().out
        assert "{0,11}" in out  # Section I: eleven volatile replicas
        assert "{1," in out  # Section III: hybrid anchor

    def test_availability_custom_p(self, capsys):
        assert main(["availability", "--p", "0.1", "--goal", "0.999"]) == 0
        out = capsys.readouterr().out
        assert "volatile-only" in out

    def test_estimate(self, capsys):
        assert main(["estimate", "--rate", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "map" in out and "shuffle" in out and "total" in out

    def test_estimate_with_expiry(self, capsys):
        assert main(["estimate", "--rate", "0.5",
                     "--expiry-minutes", "10"]) == 0
        assert "total" in capsys.readouterr().out


class TestTraceCommands:
    def test_generate_and_stats_csv(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        assert main([
            "trace", "generate", str(out), "--nodes", "8",
            "--rate", "0.3", "--seed", "1",
        ]) == 0
        assert out.exists()
        assert main(["trace", "stats", str(out)]) == 0
        assert "mean unavail 0.300" in capsys.readouterr().out

    def test_generate_json_correlated(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main([
            "trace", "generate", str(out), "--nodes", "8",
            "--rate", "0.4", "--correlated",
        ]) == 0
        assert main(["trace", "stats", str(out), "--histogram"]) == 0
        assert "outage lengths" in capsys.readouterr().out

    def test_generate_each_distribution(self, tmp_path):
        for dist in ("lognormal", "exponential"):
            out = tmp_path / f"{dist}.csv"
            assert main([
                "trace", "generate", str(out), "--nodes", "4",
                "--distribution", dist,
            ]) == 0


class TestServeCommand:
    def test_small_autoscaled_serve_run(self, capsys):
        rc = main([
            "serve", "--pattern", "bursty", "--autoscale", "reactive",
            "--jobs-per-hour", "18", "--hours", "0.5", "--volatile", "6",
            "--dedicated", "2", "--rate", "0.1", "--seed", "4",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "service report" in out
        assert "autoscale=reactive" in out
        assert "node-hours" in out

    def test_autoscale_all_rejects_policy_all(self, capsys):
        rc = main(["serve", "--autoscale", "all", "--policy", "all"])
        assert rc == 2
        assert "single --policy" in capsys.readouterr().err

    def test_small_serve_run(self, capsys):
        rc = main([
            "serve", "--pattern", "poisson", "--policy", "edf",
            "--catalog", "sleep", "--jobs-per-hour", "6",
            "--hours", "0.5", "--volatile", "8", "--dedicated", "2",
            "--rate", "0.1", "--max-in-flight", "2", "--seed", "4",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "service report" in out
        assert "policy=edf" in out
        assert "(all)" in out
        assert "fairness" in out


class TestReplayCommand:
    def _sample(self):
        import pathlib

        return str(
            pathlib.Path(__file__).parent.parent
            / "benchmarks" / "data" / "hadoop_jobhistory_sample.json"
        )

    def test_serve_replay_pattern_points_at_repro_replay(self, capsys):
        rc = main(["serve", "--pattern", "replay"])
        assert rc == 2
        assert "repro replay --trace" in capsys.readouterr().err

    def test_missing_trace_file_is_a_clean_error(self, capsys):
        rc = main(["replay", "--trace", "/nonexistent/t.json"])
        assert rc == 2
        assert "replay:" in capsys.readouterr().err

    def test_scale_zero_is_rejected(self, capsys):
        rc = main(["replay", "--trace", self._sample(), "--scale", "0"])
        assert rc == 2
        assert "load_factor" in capsys.readouterr().err

    def test_autoscale_rejects_policy_all(self, capsys):
        rc = main(["replay", "--trace", self._sample(),
                   "--autoscale", "all", "--policy", "all"])
        assert rc == 2
        assert "single --policy" in capsys.readouterr().err

    def test_preempt_all_rejects_conflicting_axes(self, capsys):
        rc = main(["replay", "--trace", self._sample(),
                   "--preempt", "all", "--policy", "all"])
        assert rc == 2
        assert "--preempt all" in capsys.readouterr().err
        rc = main(["replay", "--trace", self._sample(),
                   "--preempt", "all", "--autoscale", "reactive"])
        assert rc == 2
        assert "--preempt all" in capsys.readouterr().err
        rc = main(["serve", "--preempt", "all", "--policy", "all"])
        assert rc == 2
        assert "--preempt all" in capsys.readouterr().err

    def test_preempt_flag_parses_on_both_commands(self):
        args = build_parser().parse_args(
            ["replay", "--trace", "t.csv", "--preempt", "pause"]
        )
        assert args.preempt == "pause" and not args.admission_prices
        args = build_parser().parse_args(
            ["serve", "--preempt", "deprioritise", "--admission-prices"]
        )
        assert args.preempt == "deprioritise" and args.admission_prices
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--preempt", "kill"])

    def test_determinism_smoke_same_bytes_twice(self, capsys):
        """The fast-lane smoke: replaying the bundled sample twice in
        fresh systems prints byte-identical reports."""
        argv = ["replay", "--trace", self._sample(), "--policy", "edf"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "service report" in first
        assert "pattern=replay" in first
        assert "replayed trace: hadoop_jobhistory_sample" in first
        assert first == second

    def test_journal_flags_parse_on_both_commands(self):
        args = build_parser().parse_args(
            ["serve", "--journal", "on", "--checkpoint-interval", "60",
             "--namenode-crash", "900"]
        )
        assert args.journal == "on"
        assert args.checkpoint_interval == 60.0
        assert args.namenode_crash == 900.0
        args = build_parser().parse_args(
            ["replay", "--trace", "t.csv", "--namenode-crash", "120"]
        )
        assert args.journal == "off" and args.namenode_crash == 120.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--journal", "maybe"])

    def test_namenode_crash_recovery_smoke_same_bytes_twice(self, capsys):
        """Fast-lane failover smoke: a serve run that crashes the
        NameNode mid-stream recovers (journal trailer in the report)
        and stays byte-deterministic across fresh systems."""
        argv = [
            "serve", "--pattern", "poisson", "--policy", "edf",
            "--catalog", "sleep", "--jobs-per-hour", "6",
            "--hours", "0.5", "--volatile", "8", "--dedicated", "2",
            "--rate", "0.1", "--max-in-flight", "2", "--seed", "4",
            "--namenode-crash", "600",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "journal=on: 1 crash(es)" in first
        assert "mean recovery" in first
        assert first == second

    def test_journal_off_report_is_byte_identical_to_pre_journal(
        self, capsys
    ):
        """The acceptance bar: with --journal off (the default) the
        serve report must not mention the journal at all — the layer
        adds zero events and zero report surface."""
        argv = [
            "serve", "--pattern", "poisson", "--policy", "edf",
            "--catalog", "sleep", "--jobs-per-hour", "6",
            "--hours", "0.5", "--volatile", "8", "--dedicated", "2",
            "--rate", "0.1", "--max-in-flight", "2", "--seed", "4",
        ]
        assert main(argv) == 0
        assert "journal" not in capsys.readouterr().out

    def test_preempt_determinism_smoke_same_bytes_twice(self, capsys):
        """Fast-lane preemption smoke: the same pause-mode replay on a
        pressured cluster twice — controller decisions, audit table and
        report must diff to nothing (the trace-scale twin lives in
        benchmarks/test_preempt_replay.py, marked slow)."""
        argv = [
            "replay", "--trace", self._sample(), "--policy", "edf",
            "--volatile", "6", "--dedicated", "1",
            "--max-in-flight", "2", "--preempt", "pause",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "preempt=pause" in first
        assert first == second

    def test_capture_roundtrip_through_cli(self, tmp_path, capsys):
        out = tmp_path / "captured.json"
        rc = main(["--verbose", "replay", "--trace", self._sample(),
                   "--capture", str(out)])
        assert rc == 0
        captured = capsys.readouterr()
        assert out.exists()
        assert "captured" in captured.err
        rc = main(["replay", "--trace", str(out)])
        assert rc == 0
        assert "service report" in capsys.readouterr().out


class TestObsFlags:
    """--json / --trace-out / --metrics-out / repro profile wiring."""

    def _sample(self):
        import pathlib

        return str(
            pathlib.Path(__file__).parent.parent
            / "benchmarks" / "data" / "hadoop_jobhistory_sample.json"
        )

    def test_replay_json_report_roundtrip(self, tmp_path, capsys):
        import json

        path = tmp_path / "report.json"
        rc = main(["replay", "--trace", self._sample(),
                   "--policy", "edf", "--json", str(path)])
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 1
        assert len(payload["reports"]) == 1
        report = payload["reports"][0]
        assert report["schema_version"] == 1
        assert report["policy"] == "edf"
        # Round-trip: the JSON is what to_dict() said.
        assert json.loads(json.dumps(report)) == report

    def test_serve_json_writes_one_report_per_cell(self, tmp_path, capsys):
        import json

        path = tmp_path / "cells.json"
        rc = main([
            "serve", "--pattern", "poisson", "--policy", "all",
            "--catalog", "sleep", "--jobs-per-hour", "6",
            "--hours", "0.25", "--volatile", "6", "--dedicated", "2",
            "--rate", "0.1", "--max-in-flight", "2", "--seed", "4",
            "--json", str(path),
        ])
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 1
        policies = [r["policy"] for r in payload["reports"]]
        assert len(policies) == len(set(policies)) >= 2

    def test_replay_trace_out_is_valid_chrome_json(self, tmp_path, capsys):
        import json

        trace = tmp_path / "run.trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main(["replay", "--trace", self._sample(),
                   "--policy", "edf", "--trace-out", str(trace),
                   "--metrics-out", str(metrics)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases >= {"M", "X"}  # metadata + complete spans
        names = {e["name"] for e in events}
        assert "queue.wait" in names  # job queue-wait spans
        # Attempt-execution spans live on the per-node lanes.
        assert any(e.get("cat") == "attempt" for e in events)
        reg = json.loads(metrics.read_text())
        assert reg["counters"]["service/jobs_admitted"] >= 1

    def test_trace_out_does_not_change_the_report(self, tmp_path, capsys):
        argv = ["replay", "--trace", self._sample(), "--policy", "edf"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--trace-out",
                            str(tmp_path / "t.json")]) == 0
        traced = capsys.readouterr().out
        assert plain == traced

    def test_profile_prints_hot_table(self, tmp_path, capsys, monkeypatch):
        from repro.perf import SCENARIOS
        from repro.perf.scenarios import Scenario

        def fake_run():
            from repro.simulation import Simulation

            sim = Simulation(seed=1)
            for t in range(5):
                sim.call_at(float(t), lambda: None)
            sim.run()
            return {"events": 5.0}

        monkeypatch.setitem(
            SCENARIOS, "fig6",
            Scenario(name="fig6", description="tiny stub", run=fake_run),
        )
        rc = main(["profile", "--scenario", "fig6", "--top", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[profile] fig6" in out
        assert "TOTAL" in out
        assert "lambda" in out  # the stub handler shows up as a row


class TestRunCommand:
    def test_small_moon_run(self, capsys):
        rc = main([
            "run", "--workload", "sleep-sort", "--maps", "48",
            "--volatile", "12", "--dedicated", "2", "--rate", "0.2",
            "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "succeeded" in out

    def test_small_hadoop_run(self, capsys):
        rc = main([
            "run", "--workload", "sleep-sort", "--maps", "48",
            "--scheduler", "hadoop", "--expiry-minutes", "1",
            "--volatile", "12", "--dedicated", "2", "--rate", "0.2",
            "--seed", "3",
        ])
        assert rc == 0
        assert "succeeded" in capsys.readouterr().out
