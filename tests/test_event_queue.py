"""EventQueue internals: cancel semantics, daemon/foreground
accounting, and PeriodicTask.stop() racing its own tick.

These pin the queue's contract ahead of dispatch-path optimizations:
lazy deletion must never skew the live counts the engine's idle
detection reads, and a stopped periodic task must never fire again —
even when the stop lands at the exact timestamp of the next tick.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulation import PeriodicTask, Simulation
from repro.simulation.event import EventQueue


@pytest.fixture
def queue():
    return EventQueue()


class TestCancelSemantics:
    def test_pop_skips_cancelled_head(self, queue):
        first = queue.push(1.0, 0, lambda: None, ())
        second = queue.push(2.0, 0, lambda: None, ())
        first.cancel()
        assert queue.pop() is second

    def test_peek_time_skips_cancelled_head(self, queue):
        first = queue.push(1.0, 0, lambda: None, ())
        queue.push(5.0, 0, lambda: None, ())
        first.cancel()
        assert queue.peek_time() == 5.0

    def test_peek_time_empty_after_all_cancelled(self, queue):
        ev = queue.push(1.0, 0, lambda: None, ())
        ev.cancel()
        assert queue.peek_time() is None

    def test_pop_empty_raises(self, queue):
        with pytest.raises(SimulationError):
            queue.pop()

    def test_pop_all_cancelled_raises(self, queue):
        for t in (1.0, 2.0, 3.0):
            queue.push(t, 0, lambda: None, ()).cancel()
        with pytest.raises(SimulationError):
            queue.pop()

    def test_cancel_after_pop_does_not_corrupt_counts(self, queue):
        ev = queue.push(1.0, 0, lambda: None, ())
        queue.push(2.0, 0, lambda: None, ())
        assert queue.pop() is ev
        ev.cancel()  # fired already: must not decrement live counts
        assert len(queue) == 1
        assert queue.foreground == 1

    def test_double_cancel_counts_once(self, queue):
        ev = queue.push(1.0, 0, lambda: None, ())
        queue.push(2.0, 0, lambda: None, ())
        ev.cancel()
        ev.cancel()
        assert len(queue) == 1
        assert queue.foreground == 1

    def test_active_flag(self, queue):
        ev = queue.push(1.0, 0, lambda: None, ())
        assert ev.active
        ev.cancel()
        assert not ev.active

    def test_many_interleaved_cancels_preserve_order(self, queue):
        events = [queue.push(float(i), 0, lambda: None, (i,)) for i in range(50)]
        for ev in events[::2]:
            ev.cancel()
        popped = []
        while queue:
            popped.append(queue.pop().args[0])
        assert popped == list(range(1, 50, 2))


class TestDaemonForegroundAccounting:
    def test_mixed_counts(self, queue):
        queue.push(1.0, 0, lambda: None, ())
        queue.push(2.0, 0, lambda: None, (), daemon=True)
        queue.push(3.0, 0, lambda: None, ())
        assert len(queue) == 3
        assert queue.foreground == 2

    def test_cancel_daemon_keeps_foreground_count(self, queue):
        queue.push(1.0, 0, lambda: None, ())
        daemon = queue.push(2.0, 0, lambda: None, (), daemon=True)
        daemon.cancel()
        assert len(queue) == 1
        assert queue.foreground == 1

    def test_cancel_foreground_keeps_daemon_count(self, queue):
        fg = queue.push(1.0, 0, lambda: None, ())
        queue.push(2.0, 0, lambda: None, (), daemon=True)
        fg.cancel()
        assert len(queue) == 1
        assert queue.foreground == 0

    def test_pop_decrements_matching_class(self, queue):
        queue.push(1.0, 0, lambda: None, (), daemon=True)
        queue.push(2.0, 0, lambda: None, ())
        queue.pop()
        assert queue.foreground == 1
        queue.pop()
        assert queue.foreground == 0
        assert len(queue) == 0

    def test_drain_and_refill_counts_stay_exact(self, queue):
        for round_ in range(3):
            for i in range(10):
                queue.push(float(i), 0, lambda: None, (), daemon=(i % 2 == 0))
            assert len(queue) == 10
            assert queue.foreground == 5
            while queue:
                queue.pop()
            assert queue.foreground == 0


class TestPeriodicTaskStopRace:
    def test_stop_at_tick_timestamp_prevents_fire(self):
        """stop() scheduled at the exact time of the next tick, at a
        lower priority value, runs first and must suppress the tick."""
        sim = Simulation()
        fired = []
        task = PeriodicTask(sim, 10.0, lambda: fired.append(sim.now))
        # Runs at t=10 with priority -1 < the task's 20: before _tick.
        sim.call_at(10.0, task.stop, priority=-1)
        sim.run(until=50.0)
        assert fired == []

    def test_stop_after_same_time_tick_still_halts(self):
        """stop() at the tick's timestamp but *after* it in priority:
        the tick fires once, then the re-armed event must die."""
        sim = Simulation()
        fired = []
        task = PeriodicTask(sim, 10.0, lambda: fired.append(sim.now))
        sim.call_at(10.0, task.stop, priority=99)
        sim.run(until=50.0)
        assert fired == [10.0]

    def test_stop_inside_own_fn_blocks_rearm(self):
        sim = Simulation()
        fired = []
        holder = {}

        def fn():
            fired.append(sim.now)
            holder["task"].stop()

        holder["task"] = PeriodicTask(sim, 5.0, fn)
        sim.run(until=60.0)
        assert fired == [5.0]
        assert sim.pending_events() == 0

    def test_stop_twice_is_idempotent(self):
        sim = Simulation()
        task = PeriodicTask(sim, 5.0, lambda: None)
        task.stop()
        task.stop()
        assert sim.pending_events() == 0

    def test_stale_tick_after_stop_is_inert(self):
        """Even if a stopped task's _tick is invoked directly (stale
        event delivered through another path), it must neither call fn
        nor re-arm."""
        sim = Simulation()
        fired = []
        task = PeriodicTask(sim, 5.0, lambda: fired.append(sim.now))
        task.stop()
        task._tick()
        assert fired == []
        assert sim.pending_events() == 0

    def test_stop_then_new_task_same_sim(self):
        sim = Simulation()
        fired = []
        old = PeriodicTask(sim, 3.0, lambda: fired.append(("old", sim.now)))
        old.stop()
        PeriodicTask(sim, 4.0, lambda: fired.append(("new", sim.now)))
        sim.run(until=8.0)
        assert fired == [("new", 4.0), ("new", 8.0)]


class TestRngHandleStability:
    """Hot callers memoise stream handles; that only works if rng()
    returns the *same* generator object for a name, forever."""

    def test_same_handle_every_call(self):
        sim = Simulation(seed=7)
        g1 = sim.rng("namenode")
        g1.random()  # drawing must not invalidate the handle
        assert sim.rng("namenode") is g1
        assert sim.rng_indexed("trace", 3) is sim.rng_indexed("trace", 3)

    def test_memoised_handle_sees_the_stream_state(self):
        sim_a, sim_b = Simulation(seed=9), Simulation(seed=9)
        handle = sim_a.rng("x")  # resolved once, used many times
        a = [handle.random() for _ in range(4)]
        b = [sim_b.rng("x").random() for _ in range(4)]  # re-resolved
        assert a == b
