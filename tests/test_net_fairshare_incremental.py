"""Incremental vs full water-filling: exact equivalence.

The fair-share model recomputes rates only for the connected component
a flow change touches.  These tests replay identical randomized
arrival/departure/outage schedules through an incremental network and
a full-recompute oracle (``incremental=False``) and require *exact*
agreement — same rates after every change, same completion and failure
events at the same simulated times, in the same order.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FairShareNetwork
from repro.simulation import Simulation

N_NODES = 6


def _build(incremental: bool):
    sim = Simulation(seed=0)
    net = FairShareNetwork(sim, incremental=incremental)
    for i in range(N_NODES):
        # Heterogeneous capacities so bottlenecks move around.
        net.register_node(i, disk_mbps=40.0 + 7.0 * i, nic_mbps=60.0 + 11.0 * i)
    return sim, net


def _replay(ops, incremental: bool):
    """Run one op schedule; return (event_log, rate_snapshots)."""
    sim, net = _build(incremental)
    log = []
    snapshots = []
    op_of_transfer = {}

    def start(op_idx, kind, a, b, size):
        def done(t):
            log.append(("done", op_of_transfer[id(t)], sim.now))

        def fail(t):
            log.append(("fail", op_of_transfer[id(t)], sim.now))

        if kind == "transfer":
            t = net.transfer(a, b, size, on_complete=done, on_fail=fail)
        else:
            t = net.disk_io(a, size, on_complete=done, on_fail=fail)
        op_of_transfer[id(t)] = op_idx

    def snapshot():
        rates = sorted(
            (op_of_transfer[id(f.transfer)], f.rate) for f in net._flows
        )
        snapshots.append((sim.now, tuple(rates)))

    for op_idx, (at, kind, a, b, size) in enumerate(ops):
        if kind in ("transfer", "disk"):
            sim.call_at(at, start, op_idx, kind, a, b, size)
        elif kind == "down":
            sim.call_at(at, net.node_down, a)
        else:
            sim.call_at(at, net.node_up, a)
        # Observe rates just after each op (and any same-time churn).
        sim.call_at(at, snapshot, priority=1000)
    sim.run()
    return log, snapshots


_op = st.tuples(
    st.floats(min_value=0.0, max_value=120.0, allow_nan=False, width=32),
    st.sampled_from(["transfer", "transfer", "disk", "down", "up"]),
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.floats(min_value=0.0, max_value=300.0, allow_nan=False, width=32),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_op, min_size=1, max_size=25))
def test_property_incremental_matches_full_recompute(ops):
    log_inc, snaps_inc = _replay(ops, incremental=True)
    log_full, snaps_full = _replay(ops, incremental=False)
    assert log_inc == log_full
    assert snaps_inc == snaps_full


def test_large_churn_schedule_matches_exactly():
    """A dense deterministic schedule: hundreds of overlapping flows,
    repeated outages of two nodes, many same-instant arrivals."""
    ops = []
    for i in range(400):
        at = (i * 7) % 97 + 0.25 * (i % 4)
        kind = ("transfer", "disk", "transfer", "transfer")[i % 4]
        src = i % N_NODES
        dst = (i * 3 + 1) % N_NODES
        size = float((i * 13) % 240)
        ops.append((at, kind, src, dst, size))
    for i in range(12):
        ops.append((8.0 * i + 3.0, "down", i % 2, 0, 0.0))
        ops.append((8.0 * i + 6.5, "up", i % 2, 0, 0.0))
    log_inc, snaps_inc = _replay(ops, incremental=True)
    log_full, snaps_full = _replay(ops, incremental=False)
    assert log_inc == log_full
    assert snaps_inc == snaps_full
    assert any(events for events in (log_inc,))  # sanity: work happened


def test_disjoint_components_untouched_by_churn():
    """A flow in an isolated component keeps its exact rate while
    unrelated flows start and finish (the incremental fast path)."""
    sim, net = _build(True)
    t_iso = net.transfer(4, 5, 1000.0)
    rate0 = net.flow_rate(t_iso)
    assert rate0 > 0
    for i in range(10):
        net.transfer(0, 1, 5.0)
        net.disk_io(2, 3.0)
    assert net.flow_rate(t_iso) == rate0


def test_incremental_flag_default_and_oracle_mode():
    sim, net = _build(True)
    assert net._incremental
    _, oracle = _build(False)
    assert not oracle._incremental
