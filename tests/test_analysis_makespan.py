"""Tests for the analytical makespan model."""

from __future__ import annotations

import pytest

from repro.analysis import (
    TwoStateModel,
    estimate_makespan,
    expected_task_time,
    waves,
)
from repro.errors import ConfigError
from repro.workloads import sleep_like_sort, sort_spec, wordcount_spec


class TestExpectedTaskTime:
    def test_no_volatility_is_service_time(self):
        m = TwoStateModel(0.0, 409.0)
        assert expected_task_time(100.0, m) == pytest.approx(100.0)

    def test_pause_resume_inflation(self):
        """MOON semantics: occupancy = service / (1 - p)."""
        m = TwoStateModel(0.5, 409.0)
        assert expected_task_time(100.0, m) == pytest.approx(200.0)

    def test_kill_policy_costs_more_than_pause(self):
        """Hadoop's expiry kills waste work: for any finite expiry the
        expected occupancy exceeds the pause-only occupancy."""
        m = TwoStateModel(0.4, 409.0)
        pause = expected_task_time(300.0, m)
        killed = expected_task_time(300.0, m, kill_after=600.0)
        assert killed > pause

    def test_shorter_expiry_wastes_more_on_long_tasks(self):
        """A 1-minute expiry kills almost every interrupted long task;
        30 minutes rides out most 409-second outages."""
        m = TwoStateModel(0.4, 409.0)
        t1 = expected_task_time(600.0, m, kill_after=60.0)
        t30 = expected_task_time(600.0, m, kill_after=1800.0)
        assert t1 > t30

    def test_zero_service(self):
        m = TwoStateModel(0.4, 409.0)
        assert expected_task_time(0.0, m) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            expected_task_time(-1.0, TwoStateModel(0.4, 409.0))


class TestWaves:
    def test_exact_division(self):
        assert waves(120, 60) == 2

    def test_remainder_rounds_up(self):
        assert waves(121, 60) == 3

    def test_zero_tasks(self):
        assert waves(0, 60) == 0

    def test_no_slots_rejected(self):
        with pytest.raises(ConfigError):
            waves(10, 0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            waves(-1, 10)


class TestEstimateMakespan:
    def test_makespan_grows_with_volatility(self):
        spec = sleep_like_sort(n_maps=384)
        t1 = estimate_makespan(spec, 60, 0.1).total
        t3 = estimate_makespan(spec, 60, 0.3).total
        t5 = estimate_makespan(spec, 60, 0.5).total
        assert t1 < t3 < t5

    def test_kill_policy_inflates_makespan(self):
        spec = sleep_like_sort(n_maps=384)
        moon_like = estimate_makespan(spec, 60, 0.5).total
        hadoop_like = estimate_makespan(spec, 60, 0.5, kill_after=600.0).total
        assert hadoop_like > moon_like

    def test_sort_dominated_by_io_wordcount_by_maps(self):
        """sort moves ~24 GB of intermediate data; word count's shuffle
        is tiny (Table II's contrast)."""
        sort_est = estimate_makespan(sort_spec(), 60, 0.3)
        wc_est = estimate_makespan(wordcount_spec(), 60, 0.3)
        assert sort_est.shuffle_time > wc_est.shuffle_time
        assert wc_est.map_time > wc_est.shuffle_time

    def test_breakdown_sums(self):
        est = estimate_makespan(sort_spec(), 60, 0.3)
        assert est.total == pytest.approx(
            est.map_time + est.shuffle_time + est.reduce_time
        )

    def test_more_nodes_faster(self):
        spec = sort_spec()
        small = estimate_makespan(spec, 30, 0.3).total
        large = estimate_makespan(spec, 120, 0.3).total
        assert large < small

    def test_needs_a_node(self):
        with pytest.raises(ConfigError):
            estimate_makespan(sort_spec(), 0, 0.3)

    def test_sanity_against_simulated_sleep_run(self):
        """The analytical estimate should land within a factor ~3 of
        the simulator for the benign sleep workload at low volatility
        (it ignores replication, stragglers, heartbeat latencies)."""
        from repro.core import moon_system
        from repro.config import SystemConfig, ClusterConfig, TraceConfig
        from repro.config import moon_scheduler_config

        spec = sleep_like_sort(n_maps=96)
        cfg = SystemConfig(
            cluster=ClusterConfig(n_volatile=20, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=0.1),
            scheduler=moon_scheduler_config(),
            seed=5,
        )
        result = moon_system(cfg).run_job(spec)
        assert result.succeeded
        est = estimate_makespan(spec, 20, 0.1).total
        assert est / 3 < result.elapsed < est * 3
