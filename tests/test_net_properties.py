"""Cross-model property tests for the two transfer models.

Both the FIFO-queue and max-min fair-share models must agree on
physics: byte conservation, capacity limits, and identical results for
uncontended serial transfers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FairShareNetwork, FifoNetwork
from repro.simulation import Simulation


def build(model_cls, n_nodes=4, disk=60.0, nic=80.0):
    sim = Simulation(seed=0)
    net = model_cls(sim)
    for i in range(n_nodes):
        net.register_node(i, disk, nic)
    return sim, net


MODELS = [FifoNetwork, FairShareNetwork]


class TestSingleTransferAgreement:
    @pytest.mark.parametrize("model_cls", MODELS)
    def test_uncontended_transfer_time(self, model_cls):
        """One 80 MB copy over a 80 MB/s NIC with 60 MB/s disks: the
        disk is the bottleneck in store-and-forward, ~1.33 s."""
        sim, net = build(model_cls)
        done = []
        net.transfer(0, 1, 80.0, on_complete=lambda t: done.append(sim.now))
        sim.run()
        assert done
        assert done[0] == pytest.approx(80.0 / 60.0, rel=1e-6)

    @pytest.mark.parametrize("model_cls", MODELS)
    def test_disk_io_time(self, model_cls):
        sim, net = build(model_cls)
        done = []
        net.disk_io(2, 30.0, on_complete=lambda t: done.append(sim.now))
        sim.run()
        assert done[0] == pytest.approx(0.5)

    @pytest.mark.parametrize("model_cls", MODELS)
    def test_transfer_to_down_node_fails(self, model_cls):
        sim, net = build(model_cls)
        net.node_down(1)
        failed = []
        net.transfer(0, 1, 10.0, on_fail=lambda t: failed.append(t))
        sim.run()
        assert len(failed) == 1

    @pytest.mark.parametrize("model_cls", MODELS)
    def test_mid_flight_abort(self, model_cls):
        sim, net = build(model_cls)
        outcome = []
        net.transfer(
            0, 1, 800.0,
            on_complete=lambda t: outcome.append("done"),
            on_fail=lambda t: outcome.append("fail"),
        )
        sim.call_after(1.0, lambda: net.node_down(1))
        sim.run()
        assert outcome == ["fail"]


class TestConservation:
    @pytest.mark.parametrize("model_cls", MODELS)
    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(
            st.floats(min_value=0.1, max_value=200.0), min_size=1, max_size=12
        )
    )
    def test_property_bytes_served_conserved(self, model_cls, sizes):
        """Every completed transfer credits exactly its size to both
        endpoints' served counters."""
        sim, net = build(model_cls)
        done = []
        for i, mb in enumerate(sizes):
            net.transfer(
                i % 2, 2 + (i % 2), mb,
                on_complete=lambda t: done.append(t.size_mb),
            )
        sim.run()
        assert len(done) == len(sizes)
        total = sum(net.mb_served.values())
        assert total == pytest.approx(2 * sum(sizes))

    @pytest.mark.parametrize("model_cls", MODELS)
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=10),
        mb=st.floats(min_value=1.0, max_value=50.0),
    )
    def test_property_capacity_respected(self, model_cls, n, mb):
        """n equal transfers into one sink cannot finish faster than
        the sink's bottleneck channel allows."""
        sim, net = build(model_cls, n_nodes=n + 1)
        finish = []
        for src in range(1, n + 1):
            net.transfer(
                src, 0, mb, on_complete=lambda t: finish.append(sim.now)
            )
        sim.run()
        bottleneck = min(60.0, 80.0)  # disk is the slower channel
        lower_bound = n * mb / bottleneck
        assert max(finish) >= lower_bound - 1e-6

    @pytest.mark.parametrize("model_cls", MODELS)
    def test_no_transfers_no_bytes(self, model_cls):
        sim, net = build(model_cls)
        sim.run()
        assert sum(net.mb_served.values()) == 0.0


class TestOrderingDifferences:
    def test_fifo_serialises_fairshare_shares(self):
        """The models legitimately differ under contention: FIFO
        finishes the first transfer at its solo time, fair-share delays
        it (bandwidth split) — the XTRA-A ablation's mechanism."""
        first_done = {}
        for cls in MODELS:
            sim, net = build(cls)
            times = []
            net.transfer(0, 1, 60.0, on_complete=lambda t: times.append(sim.now))
            net.transfer(2, 1, 60.0, on_complete=lambda t: times.append(sim.now))
            sim.run()
            first_done[cls.__name__] = min(times)
        assert first_done["FairShareNetwork"] > first_done["FifoNetwork"]
