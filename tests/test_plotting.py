"""Tests for the ASCII chart renderers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plotting import bar_chart, histogram, line_chart, sparkline, table
from repro.plotting.ascii import MISSING, PlotError


class TestBarChart:
    def test_basic_shape(self):
        out = bar_chart(
            ["0.1", "0.3"],
            {"Hadoop": [100, 200], "MOON": [80, 120]},
            title="Fig",
            unit="s",
        )
        assert out.startswith("Fig")
        assert "0.1:" in out and "0.3:" in out
        assert out.count("Hadoop") == 2
        assert "200 s" in out

    def test_missing_value_rendered_as_dash(self):
        out = bar_chart(["a"], {"x": [None]})
        assert MISSING in out

    def test_longest_bar_is_max(self):
        out = bar_chart(["g"], {"a": [10], "b": [40]}, width=20)
        a_line = next(l for l in out.splitlines() if l.lstrip().startswith("a"))
        b_line = next(l for l in out.splitlines() if l.lstrip().startswith("b"))
        assert b_line.count("#") == 20
        assert a_line.count("#") == 5

    def test_zero_values(self):
        out = bar_chart(["g"], {"a": [0], "b": [0]})
        assert "0" in out

    def test_mismatched_lengths(self):
        with pytest.raises(PlotError):
            bar_chart(["a", "b"], {"x": [1]})

    def test_no_groups(self):
        with pytest.raises(PlotError):
            bar_chart([], {})


class TestLineChart:
    def test_dimensions(self):
        out = line_chart(
            [0, 1, 2, 3], {"d1": [1, 2, 3, 4]}, height=8, width=30
        )
        body = [l for l in out.splitlines() if "|" in l]
        assert len(body) == 8

    def test_legend_lists_series(self):
        out = line_chart([0, 1], {"day1": [1, 2], "day2": [2, 1]})
        assert "day1" in out and "day2" in out

    def test_constant_series_ok(self):
        out = line_chart([0, 1], {"c": [5, 5]})
        assert "5" in out

    def test_too_small(self):
        with pytest.raises(PlotError):
            line_chart([0], {"a": [1]}, height=1)

    def test_length_mismatch(self):
        with pytest.raises(PlotError):
            line_chart([0, 1], {"a": [1]})

    def test_empty_x(self):
        with pytest.raises(PlotError):
            line_chart([], {})


class TestTable:
    def test_alignment(self):
        out = table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # all rows same width

    def test_none_rendered(self):
        out = table(["x"], [[None]])
        assert MISSING in out

    def test_title(self):
        assert table(["h"], [], title="T").startswith("T")

    def test_bad_row(self):
        with pytest.raises(PlotError):
            table(["a", "b"], [["only-one"]])

    def test_no_headers(self):
        with pytest.raises(PlotError):
            table([], [])


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_constant(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_extremes(self):
        s = sparkline([0, 100])
        assert s[0] == " " and s[-1] == "█"

    def test_empty(self):
        with pytest.raises(PlotError):
            sparkline([])


class TestHistogram:
    def test_counts_sum(self):
        out = histogram([1, 1, 2, 3, 10], bins=3)
        totals = [int(l.rsplit(" ", 1)[1]) for l in out.splitlines()]
        assert sum(totals) == 5

    def test_single_value(self):
        out = histogram([7.0], bins=2)
        assert "1" in out

    def test_bad_bins(self):
        with pytest.raises(PlotError):
            histogram([1.0], bins=0)

    def test_empty(self):
        with pytest.raises(PlotError):
            histogram([])


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=1,
            max_size=50,
        )
    )
    def test_property_sparkline_never_crashes(self, values):
        assert len(sparkline(values)) == len(values)

    @settings(max_examples=30, deadline=None)
    @given(
        n_groups=st.integers(min_value=1, max_value=5),
        n_series=st.integers(min_value=1, max_value=4),
    )
    def test_property_bar_chart_line_count(self, n_groups, n_series):
        groups = [f"g{i}" for i in range(n_groups)]
        series = {
            f"s{j}": [float(j + i) for i in range(n_groups)]
            for j in range(n_series)
        }
        out = bar_chart(groups, series)
        assert len(out.splitlines()) == n_groups * (1 + n_series)
