"""Critical-path explainer (ISSUE 9): causal graphs, blame, run-diff.

The explain layer reads the flight recorder and answers "why was this
job slow?".  Its contract:

* **conservation** — every finished job's blame components sum to its
  response time exactly (nothing hides, nothing double-counts);
* **causal enrichment** — attempts carry their cause (first /
  speculative / failure / suspicion / fetch_failure), queue-wait spans
  join service seq to job id, commits are marked;
* **run-diff triage** — identical seeded runs diff clean; a single
  perturbed event is localized to its exact index.
"""

from __future__ import annotations

import json
import math
import pathlib

from repro.cli import main
from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.obs import Observability, ObsConfig
from repro.obs.explain import (
    BLAME_CATEGORIES,
    build_graphs,
    diff_files,
    events_from_tracer,
    explain_tracer,
)
from repro.service import (
    MoonService,
    PreemptConfig,
    ServiceConfig,
    replay_arrivals,
)
from repro.workloads import sleep_spec

HOUR = 3600.0
SAMPLE = str(
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "data" / "hadoop_jobhistory_sample.json"
)


def _entries():
    """Two hogging batch jobs, two tight-SLO jobs behind them — forces
    queue wait, preemption pauses and multi-attempt critical paths."""
    batch = sleep_spec(300.0, 120.0, n_maps=12, n_reduces=2).with_(
        name="batch"
    )
    tight = sleep_spec(20.0, 5.0, n_maps=4, n_reduces=1).with_(
        name="tight"
    )
    return [
        (0.0, "a", batch, 4 * HOUR),
        (0.0, "a", batch, 4 * HOUR),
        (60.0, "b", tight, 300.0),
        (70.0, "b", tight, 300.0),
    ]


def _run_traced(preempt="pause", rate=0.0, seed=3):
    """One pressured serve run with the recorder armed."""
    obs = Observability(ObsConfig(trace=True))
    system = moon_system(
        SystemConfig(
            cluster=ClusterConfig(n_volatile=8, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=rate),
            scheduler=moon_scheduler_config(),
            seed=seed,
        ),
        obs=obs,
    )
    service = MoonService(
        system,
        ServiceConfig(
            policy="edf",
            max_in_flight=2,
            horizon=HOUR,
            preempt=PreemptConfig(mode=preempt) if preempt else None,
        ),
        replay_arrivals(_entries()),
    )
    report = service.run()
    system.jobtracker.stop()
    system.namenode.stop()
    return report, obs


class TestConservation:
    def test_components_sum_to_response_time(self):
        _, obs = _run_traced()
        exp = explain_tracer(obs.tracer)
        assert exp.jobs, "pressured run must finish jobs"
        for blame in exp.jobs:
            assert blame.total == blame.response_time or (
                abs(blame.total - blame.response_time) < 1e-6
            )
            for category, seconds in blame.components.items():
                assert category in BLAME_CATEGORIES
                assert seconds >= -1e-9

    def test_segments_partition_the_admitted_window(self):
        _, obs = _run_traced()
        exp = explain_tracer(obs.tracer)
        for blame in exp.jobs:
            segs = blame.segments
            assert segs[0].start == blame.graph.arrival
            assert abs(segs[-1].end - blame.graph.finished) < 1e-9
            for a, b in zip(segs, segs[1:]):
                assert abs(a.end - b.start) < 1e-9

    def test_aggregates_are_exact_fsums_of_jobs(self):
        _, obs = _run_traced()
        exp = explain_tracer(obs.tracer)
        totals = exp.totals()
        for category in BLAME_CATEGORIES:
            assert totals[category] == math.fsum(
                b.components[category] for b in exp.jobs
            )
        per_tenant = exp.by_tenant()
        for category in BLAME_CATEGORIES:
            assert abs(
                math.fsum(g[category] for g in per_tenant.values())
                - totals[category]
            ) < 1e-9


class TestCausalGraph:
    def test_pauses_and_queue_waits_join_to_jobs(self):
        _, obs = _run_traced()
        graphs, _ = build_graphs(events_from_tracer(obs.tracer))
        by_seq = {g.seq: g for g in graphs}
        # Every job the queue admitted carries its service seq.
        assert set(by_seq) == {0, 1, 2, 3}
        # The pause landed on a batch job and is a closed interval.
        paused = [g for g in graphs if g.pauses]
        assert paused
        for g in paused:
            for start, end in g.pauses:
                assert end > start
        # Tight jobs waited in the queue behind the batch hogs.
        tight = [g for g in graphs if g.workload == "tight"]
        assert all(g.admitted > g.arrival for g in tight)

    def test_attempt_causes_are_recorded(self):
        _, obs = _run_traced(rate=0.5, seed=11)
        graphs, _ = build_graphs(events_from_tracer(obs.tracer))
        causes = {
            a.cause for g in graphs for a in g.attempts
        }
        assert "first" in causes
        # A churny volatile tier forces at least one re-execution.
        assert causes & {"failure", "speculative", "fetch_failure"}

    def test_blame_rides_the_service_report(self):
        report, _ = _run_traced()
        assert report.blame is not None
        assert set(report.blame) == set(BLAME_CATEGORIES)
        assert set(report.blame_by_tenant) == {"a", "b"}
        assert "blame" in report.to_dict()
        # blame_row folds the taxonomy into 4 cells after the summary.
        assert len(report.blame_row()) == len(report.summary_row()) + 4

    def test_blame_metrics_emitted(self):
        _, obs = _run_traced()
        counters = obs.metrics.to_dict()["counters"]
        blame_keys = {k for k in counters if k.startswith("blame/")}
        assert blame_keys == {
            f"blame/{c}_seconds" for c in BLAME_CATEGORIES
        }

    def test_untraced_report_has_no_blame(self):
        system = moon_system(
            SystemConfig(
                cluster=ClusterConfig(n_volatile=8, n_dedicated=2),
                trace=TraceConfig(unavailability_rate=0.0),
                scheduler=moon_scheduler_config(),
                seed=3,
            ),
        )
        service = MoonService(
            system,
            ServiceConfig(policy="edf", max_in_flight=2, horizon=HOUR),
            replay_arrivals(_entries()),
        )
        report = service.run()
        system.jobtracker.stop()
        system.namenode.stop()
        assert report.blame is None
        assert "blame" not in report.to_dict()


class TestDiff:
    def _write_trace(self, tmp_path, name):
        _, obs = _run_traced()
        path = tmp_path / name
        obs.tracer.write_chrome(str(path))
        return path

    def test_identical_runs_report_no_divergence(self, tmp_path):
        a = self._write_trace(tmp_path, "a.json")
        b = self._write_trace(tmp_path, "b.json")
        # In-process id streams differ between runs; normalize like
        # the cross-process case by diffing a run against itself too.
        kind, div, compared = diff_files(str(a), str(a))
        assert (kind, div) == ("trace", None) and compared > 0
        kind, div, compared = diff_files(str(b), str(b))
        assert div is None

    def test_single_perturbed_event_localized_to_exact_index(
        self, tmp_path
    ):
        a = self._write_trace(tmp_path, "a.json")
        doc = json.loads(a.read_text())
        rows = doc["traceEvents"]
        # Perturb one mid-trace non-metadata event.
        target = next(
            i for i, r in enumerate(rows)
            if r.get("ph") != "M" and i > len(rows) // 2
        )
        rows[target]["ts"] += 1e6  # one simulated second
        b = tmp_path / "b.json"
        b.write_text(json.dumps(doc))
        kind, div, _ = diff_files(str(a), str(b))
        assert kind == "trace"
        assert div is not None and div.index == target
        assert "ts" in div.detail
        assert div.render().startswith("first divergence at event")

    def test_extra_events_reported_with_side_and_index(self, tmp_path):
        a = self._write_trace(tmp_path, "a.json")
        doc = json.loads(a.read_text())
        truncated = dict(doc)
        truncated["traceEvents"] = doc["traceEvents"][:-2]
        b = tmp_path / "b.json"
        b.write_text(json.dumps(truncated))
        _, div, _ = diff_files(str(a), str(b))
        assert div.index == len(doc["traceEvents"]) - 2
        assert "extra" in div.detail

    def test_metrics_diff_and_kind_mismatch(self, tmp_path):
        ma = tmp_path / "ma.json"
        mb = tmp_path / "mb.json"
        ma.write_text(json.dumps({"counters": {"dfs/x": 1}}))
        mb.write_text(json.dumps({"counters": {"dfs/x": 2}}))
        kind, div, _ = diff_files(str(ma), str(mb))
        assert kind == "metrics"
        assert div.layer == "dfs" and div.name == "counters.dfs/x"
        ta = self._write_trace(tmp_path, "t.json")
        try:
            diff_files(str(ta), str(ma))
        except ValueError as exc:
            assert "cannot diff" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("mixed kinds must raise")


class TestCli:
    def test_explain_replay_prints_blame_tables(self, capsys):
        rc = main(["explain", "--trace", SAMPLE, "--worst", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "blame by tenant" in out
        assert "blame by job class" in out
        assert "critical path" in out

    def test_explain_job_and_tenant_selection(self, capsys):
        rc = main(["explain", "--trace", SAMPLE, "--job", "0"])
        assert rc == 0
        assert "seq0" in capsys.readouterr().out
        rc = main(["explain", "--trace", SAMPLE, "--tenant", "etl"])
        assert rc == 0
        assert "tenant etl" in capsys.readouterr().out

    def test_explain_json_is_versioned(self, tmp_path, capsys):
        out = tmp_path / "explain.json"
        rc = main(
            ["explain", "--trace", SAMPLE, "--json", str(out)]
        )
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == 1
        for job in doc["jobs"]:
            assert abs(
                math.fsum(job["blame"].values()) - job["response_time"]
            ) < 1e-6

    def test_explain_from_recorded_trace(self, tmp_path, capsys):
        trace_out = tmp_path / "run.json"
        _, obs = _run_traced()
        obs.tracer.write_chrome(str(trace_out))
        rc = main(["explain", "--from", str(trace_out), "--worst", "1"])
        assert rc == 0
        assert "blame by tenant" in capsys.readouterr().out

    def test_explain_usage_errors(self, capsys):
        assert main(["explain"]) == 2
        assert (
            main(["explain", "--trace", SAMPLE, "--detector", "all"])
            == 2
        )
        assert (
            main(["explain", "--trace", SAMPLE, "--job", "9999"]) == 2
        )

    def test_diff_cli_exit_codes(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        _, obs = _run_traced()
        obs.tracer.write_chrome(str(a))
        assert main(["diff", str(a), str(a)]) == 0
        assert "no divergence" in capsys.readouterr().out
        doc = json.loads(a.read_text())
        doc["traceEvents"][5]["name"] = "renamed"
        b = tmp_path / "b.json"
        b.write_text(json.dumps(doc))
        assert main(["diff", str(a), str(b)]) == 1
        assert "first divergence at event 5" in capsys.readouterr().out
        assert main(["diff", str(a), "/nonexistent.json"]) == 2
