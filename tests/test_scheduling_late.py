"""Tests for the LATE baseline scheduler (related work [16])."""

from __future__ import annotations

import pytest

from repro.config import SchedulerConfig, ShuffleConfig
from repro.scheduling import make_scheduler
from repro.scheduling.late import LateScheduler
from repro.simulation import Simulation
from repro.workloads import sleep_spec

from helpers import build_mr


def late_cfg(**kw):
    return SchedulerConfig(
        kind="late", tracker_expiry_interval=600.0, hybrid_aware=False, **kw
    )


@pytest.fixture
def sim():
    return Simulation(seed=0)


class TestFactory:
    def test_make_scheduler_returns_late(self):
        assert isinstance(make_scheduler(late_cfg()), LateScheduler)


class TestLateBehaviour:
    def test_runs_job_to_completion_stable(self, sim):
        _, _, _, jt = build_mr(sim, scheduler_cfg=late_cfg())
        job = jt.submit(sleep_spec(5.0, 3.0, n_maps=8, n_reduces=2))
        sim.run(until=4000.0, stop_when=lambda: job.finished)
        assert job.state.value == "succeeded"

    def test_no_speculation_while_pending_work_exists(self, sim):
        """LATE never speculates while unscheduled tasks remain — the
        pending queue always wins."""
        _, _, _, jt = build_mr(sim, scheduler_cfg=late_cfg(),
                               n_volatile=2, n_dedicated=1)
        job = jt.submit(sleep_spec(30.0, 3.0, n_maps=12, n_reduces=1))
        # Mid first wave: 6 of 12 maps are still *pending* (3 nodes x 2
        # slots), so LATE must not have speculated on anything yet.
        sim.run(until=20.0)
        assert job.counters["speculative_launched"] == 0
        assert any(not t.attempts for t in job.maps)  # work truly pending

    def test_speculates_on_suspended_straggler(self, sim):
        """A node suspension zeroes a task's progress rate; LATE must
        eventually give it a speculative copy once all tasks are
        scheduled."""
        traces = {3: [(50.0, 2000.0)]}  # node 3 disappears at t=50
        _, _, _, jt = build_mr(
            sim, scheduler_cfg=late_cfg(), traces=traces,
            n_volatile=3, n_dedicated=1,
        )
        job = jt.submit(sleep_spec(120.0, 3.0, n_maps=8, n_reduces=1))
        sim.run(until=1500.0, stop_when=lambda: job.finished)
        assert job.state.value == "succeeded"
        assert job.counters["speculative_launched"] >= 1

    def test_respects_job_level_cap(self, sim):
        cfg = late_cfg(speculative_cap_fraction=0.2)
        traces = {i: [(30.0, 3000.0)] for i in range(2, 6)}
        _, _, _, jt = build_mr(
            sim, scheduler_cfg=cfg, traces=traces,
            n_volatile=4, n_dedicated=2,
        )
        job = jt.submit(sleep_spec(60.0, 3.0, n_maps=10, n_reduces=1))
        sim.run(until=200.0)
        cap = max(1, int(0.2 * jt.available_slots()))
        assert job._spec_active <= cap + 1  # +1 for in-flight launch


class TestRateEstimation:
    def test_zero_rate_means_infinite_time_left(self, sim):
        """Tasks with no measurable progress rank first (time_left
        = inf), matching LATE's 'longest time to end' rule."""
        _, _, _, jt = build_mr(sim, scheduler_cfg=late_cfg(),
                               n_volatile=2, n_dedicated=0)
        job = jt.submit(sleep_spec(100.0, 3.0, n_maps=2, n_reduces=1))
        sim.run(until=5.0)
        policy = jt.policy
        running = job.running_tasks(job.maps[0].task_type)
        if running:
            rates = [policy._rate(t) for t in running]
            assert all(r >= 0 for r in rates)
