"""MapReduce runtime tests on a stable (failure-free) cluster."""

from __future__ import annotations

import pytest

from repro.config import SchedulerConfig
from repro.dfs import ReplicationFactor
from repro.mapreduce import JobState, TaskState, TaskType
from repro.workloads import JobSpec, sleep_spec

from helpers import build_mr


def calm_cfg(**kw):
    """MOON scheduler with homestretch replication disabled, so basic
    runtime tests see no (faithful, but noisy) tail duplication."""
    defaults = dict(kind="moon", homestretch_threshold_pct=0.0)
    defaults.update(kw)
    return SchedulerConfig(**defaults)


def tiny_job(n_maps=4, n_reduces=2, **kw) -> JobSpec:
    defaults = dict(
        name="tiny",
        n_maps=n_maps,
        n_reduces=n_reduces,
        map_input_mb=8.0,
        map_output_mb=8.0,
        reduce_output_mb=4.0,
        map_cpu_seconds=5.0,
        reduce_cpu_seconds=2.0,
        sort_seconds_per_mb=0.01,
        input_rf=ReplicationFactor(1, 2),
        intermediate_rf=ReplicationFactor(1, 1),
        output_rf=ReplicationFactor(1, 2),
    )
    defaults.update(kw)
    return JobSpec(**defaults)


class TestHappyPath:
    def test_job_completes(self, sim):
        _, _, nn, jt = build_mr(sim, scheduler_cfg=calm_cfg())
        job = jt.submit(tiny_job())
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED
        assert job.elapsed is not None and job.elapsed > 0

    def test_all_tasks_succeed_exactly_once(self, sim):
        _, _, nn, jt = build_mr(sim, scheduler_cfg=calm_cfg())
        job = jt.submit(tiny_job())
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        for t in job.tasks:
            assert t.state is TaskState.SUCCEEDED
            assert sum(1 for a in t.attempts if a.state.value == "succeeded") == 1
        assert job.counters["duplicated_tasks"] == 0

    def test_input_staged_with_one_block_per_map(self, sim):
        _, _, nn, jt = build_mr(sim, scheduler_cfg=calm_cfg())
        job = jt.submit(tiny_job(n_maps=6))
        f = nn.file(job.input_path())
        assert len(f.blocks) == 6
        assert all(t.input_block is not None for t in job.maps)

    def test_output_committed_reliable_at_full_factor(self, sim):
        _, _, nn, jt = build_mr(sim, scheduler_cfg=calm_cfg())
        job = jt.submit(tiny_job())
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        for t in job.reduces:
            f = nn.file(t.output_file.path)
            assert f.is_reliable
            for b in f.blocks:
                assert len(b.dedicated_replicas) >= 1
                assert len(b.volatile_replicas) >= 2

    def test_intermediate_cleaned_after_job(self, sim):
        _, _, nn, jt = build_mr(sim, scheduler_cfg=calm_cfg())
        job = jt.submit(tiny_job())
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        leftovers = [
            f.path for f in nn.files() if "/intermediate/" in f.path
        ]
        assert leftovers == []

    def test_map_only_job(self, sim):
        _, _, nn, jt = build_mr(sim, scheduler_cfg=calm_cfg())
        job = jt.submit(tiny_job(n_reduces=0))
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED
        assert job.n_reduces == 0

    def test_zero_output_reduces(self, sim):
        _, _, nn, jt = build_mr(sim, scheduler_cfg=calm_cfg())
        job = jt.submit(sleep_spec(2.0, 1.0, n_maps=4, n_reduces=2))
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED

    def test_reduces_resolved_from_slots(self, sim):
        _, _, nn, jt = build_mr(sim, n_volatile=6)
        # 8 nodes x 2 reduce slots = 16; 0.5 per slot -> 8 reduces.
        job = jt.submit(tiny_job(n_reduces=None, reduces_per_slot=0.5))
        assert job.n_reduces == 8

    def test_slowstart_holds_reduces_back(self, sim):
        cfg = calm_cfg(reduce_slowstart_fraction=1.0)
        _, _, nn, jt = build_mr(sim, scheduler_cfg=cfg, n_volatile=8)
        job = jt.submit(tiny_job(n_maps=8, n_reduces=2))
        sim.run(until=5.0)  # maps take ~5.5 s compute + I/O
        assert job.maps_completed() < len(job.maps)
        assert all(not t.attempts for t in job.reduces)
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED

    def test_concurrent_jobs_by_priority(self, sim):
        _, _, nn, jt = build_mr(sim, scheduler_cfg=calm_cfg(), n_volatile=4)
        hi = jt.submit(tiny_job(n_maps=8, name="hi"), priority=10)
        lo = jt.submit(tiny_job(n_maps=8, name="lo"), priority=0)
        sim.run(until=3600.0, stop_when=lambda: hi.finished and lo.finished)
        assert hi.state is JobState.SUCCEEDED
        assert lo.state is JobState.SUCCEEDED
        assert hi.finished_at <= lo.finished_at

    def test_determinism_same_seed(self):
        from repro.simulation import Simulation

        def run(seed):
            s = Simulation(seed=seed)
            _, _, _, jt = build_mr(s, scheduler_cfg=calm_cfg())
            job = jt.submit(tiny_job())
            s.run(until=3600.0, stop_when=lambda: job.finished)
            return job.elapsed

        assert run(5) == run(5)


class TestLocality:
    def test_maps_prefer_local_input(self, sim):
        _, _, nn, jt = build_mr(sim, scheduler_cfg=calm_cfg(), n_volatile=8)
        job = jt.submit(tiny_job(n_maps=8, n_reduces=1))
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        local = 0
        for t in job.maps:
            a = next(x for x in t.attempts if x.state.value == "succeeded")
            if a.node_id in t.input_block.replicas:
                local += 1
        # Most maps should have run data-local on an idle cluster.
        assert local >= len(job.maps) // 2


class TestProfileMetrics:
    def test_profile_has_phase_times(self, sim):
        from repro.metrics import ExecutionProfile

        _, _, nn, jt = build_mr(sim, scheduler_cfg=calm_cfg())
        job = jt.submit(tiny_job())
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        prof = ExecutionProfile.from_job(job, "test")
        assert prof.avg_map_time > 5.0  # compute + I/O
        assert prof.avg_shuffle_time > 0.0
        assert prof.avg_reduce_time > 0.0
        assert prof.killed_maps == 0 and prof.killed_reduces == 0

    def test_run_metrics_snapshot(self, sim):
        from repro.metrics import RunMetrics

        _, _, nn, jt = build_mr(sim, scheduler_cfg=calm_cfg())
        job = jt.submit(tiny_job())
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        m = RunMetrics.from_job(job, nn, "moon")
        assert m.succeeded and m.elapsed == job.elapsed
        assert m.namenode_counters["replicas_written"] > 0
