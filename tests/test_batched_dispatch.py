"""Batched same-instant dispatch vs the sequential reference loop.

The engine's batched mode (`Simulation.run(batch=True)`, the default)
must be indistinguishable from the sequential loop (`batch=False`) in
everything the simulation can observe: execution order, clock values,
executed-event counts, and final queue state.  These tests drive both
modes over adversarial same-instant schedules — mid-batch cancels,
same-key and lower-key pushes from inside callbacks, early stops — and
compare full execution logs.

`test_step_matches_run_dispatch` is the regression test for the old
`Simulation.step()` bypassing the `_running` guard, the trace hook and
the profiler.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation import (
    PRIORITY_HEARTBEAT,
    PRIORITY_NODE_STATE,
    PRIORITY_PERIODIC,
    PRIORITY_TRANSFER,
    Simulation,
)

PRIORITIES = (
    PRIORITY_NODE_STATE,
    PRIORITY_TRANSFER,
    PRIORITY_HEARTBEAT,
    PRIORITY_PERIODIC,
)


class Recorder:
    """Logs every executed event as (now, tag) through fn identity."""

    def __init__(self, sim):
        self.sim = sim
        self.log = []

    def hit(self, tag):
        self.log.append((self.sim.now, tag))


def _run_both(build, **run_kwargs):
    """Build + run the same schedule under both modes; return logs."""
    logs = []
    for batch in (False, True):
        sim = Simulation(seed=7)
        rec = Recorder(sim)
        build(sim, rec)
        end = sim.run(batch=batch, **run_kwargs)
        logs.append((rec.log, end, sim.executed_events, sim.pending_events()))
    return logs[0], logs[1]


def test_same_instant_burst_order():
    def build(sim, rec):
        for i in range(20):
            sim.call_at(5.0, rec.hit, f"a{i}")
        for i in range(5):
            sim.call_at(5.0, rec.hit, f"hb{i}", priority=PRIORITY_HEARTBEAT)
        sim.call_at(9.0, rec.hit, "late")

    seq, bat = _run_both(build)
    assert seq == bat
    # heartbeats (priority 10) before periodic (20), each in push order
    tags = [t for _, t in bat[0]]
    assert tags[:5] == [f"hb{i}" for i in range(5)]


def test_mid_batch_cancel_skipped():
    """An earlier batch item cancelling a later one must skip it."""

    def build(sim, rec):
        events = {}

        def cancel_later():
            rec.hit("canceller")
            events["victim"].cancel()

        sim.call_at(3.0, cancel_later)
        events["victim"] = sim.call_at(3.0, rec.hit, "victim")
        sim.call_at(3.0, rec.hit, "survivor")

    seq, bat = _run_both(build)
    assert seq == bat
    assert "victim" not in [t for _, t in bat[0]]
    assert "survivor" in [t for _, t in bat[0]]


def test_lower_priority_push_preempts_batch():
    """A same-time push that sorts before the executing batch must run
    before the batch's unexecuted remainder (as it would sequentially)."""

    def build(sim, rec):
        def pusher():
            rec.hit("pusher")
            sim.call_at(4.0, rec.hit, "urgent", priority=PRIORITY_NODE_STATE)

        sim.call_at(4.0, pusher)
        for i in range(3):
            sim.call_at(4.0, rec.hit, f"rest{i}")

    seq, bat = _run_both(build)
    assert seq == bat
    tags = [t for _, t in bat[0]]
    assert tags.index("urgent") < tags.index("rest0")


def test_same_key_push_runs_after_batch():
    def build(sim, rec):
        def pusher():
            rec.hit("pusher")
            sim.call_at(4.0, rec.hit, "appended")

        sim.call_at(4.0, pusher)
        sim.call_at(4.0, rec.hit, "second")

    seq, bat = _run_both(build)
    assert seq == bat
    assert [t for _, t in bat[0]] == ["pusher", "second", "appended"]


def test_max_events_mid_batch():
    def build(sim, rec):
        for i in range(10):
            sim.call_at(2.0, rec.hit, f"e{i}")

    seq, bat = _run_both(build, max_events=4)
    assert seq == bat
    assert len(bat[0]) == 4
    assert bat[3] == 6  # remainder still queued


def test_stop_when_mid_batch():
    def build(sim, rec):
        def flip():
            rec.hit("flip")
            sim.flag = True

        sim.flag = False
        sim.call_at(2.0, flip)
        for i in range(5):
            sim.call_at(2.0, rec.hit, f"e{i}")

    logs = []
    for batch in (False, True):
        sim = Simulation(seed=7)
        rec = Recorder(sim)
        build(sim, rec)
        sim.run(batch=batch, stop_when=lambda: sim.flag)
        logs.append((rec.log, sim.pending_events()))
    assert logs[0] == logs[1]
    assert logs[1][0] == [(2.0, "flip")]
    assert logs[1][1] == 5  # the unexecuted remainder went back


def test_daemon_idle_stop_mid_batch():
    """The last foreground event finishing mid-batch stops a
    horizonless run before the same-instant daemons fire."""

    def build(sim, rec):
        sim.call_at(2.0, rec.hit, "fg")
        sim.call_at(2.0, rec.hit, "d0", daemon=True)
        sim.call_at(2.0, rec.hit, "d1", daemon=True)

    seq, bat = _run_both(build)
    assert seq == bat
    assert [t for _, t in bat[0]] == ["fg"]
    assert bat[3] == 2  # daemons back in the queue


def test_until_boundary():
    def build(sim, rec):
        sim.call_at(2.0, rec.hit, "in")
        sim.call_at(5.0, rec.hit, "at")
        sim.call_at(5.5, rec.hit, "out")

    seq, bat = _run_both(build, until=5.0)
    assert seq == bat
    assert [t for _, t in bat[0]] == ["in", "at"]
    assert bat[1] == 5.0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 4),  # time bucket (collisions on purpose)
            st.sampled_from(PRIORITIES),
            st.booleans(),  # daemon
            st.integers(0, 3),  # action: 0 none, 1 push, 2 cancel, 3 both
        ),
        min_size=1,
        max_size=30,
    ),
    st.integers(0, 2),
)
def test_property_random_storms(events, action_priority_ix):
    """Random same-instant storms with callback-driven pushes and
    cancels execute identically under both modes."""

    def build(sim, rec):
        handles = []

        def act(tag, action):
            rec.hit(tag)
            if action in (1, 3):
                sim.call_at(
                    sim.now,
                    rec.hit,
                    f"{tag}+push",
                    priority=PRIORITIES[action_priority_ix],
                )
            if action in (2, 3) and handles:
                handles[len(rec.log) % len(handles)].cancel()

        for i, (t, prio, daemon, action) in enumerate(events):
            handles.append(
                sim.call_at(
                    float(t), act, f"e{i}", action, priority=prio, daemon=daemon
                )
            )

    seq, bat = _run_both(build)
    assert seq == bat


def test_step_matches_run_dispatch():
    """step() goes through the shared dispatch path: trace hook fires,
    executed_events advances, and stepping during run() is an error."""
    sim = Simulation(seed=1)
    seen = []
    sim.trace_hook = lambda now, event: seen.append(now)
    sim.call_at(1.0, lambda: None)
    assert sim.step() is True
    assert seen == [1.0]
    assert sim.executed_events == 1
    assert sim.step() is False

    sim2 = Simulation(seed=1)

    def reenter():
        with pytest.raises(SimulationError):
            sim2.step()

    sim2.call_at(1.0, reenter)
    sim2.run()


def test_step_profiler_accounting():
    """step() brackets callbacks with the profiler exactly like run()."""
    from repro.obs import Observability

    obs = Observability()
    profs = []

    class FakeProfiler:
        def note(self, name, dt):
            profs.append(name)

    obs.profiler = FakeProfiler()
    sim = Simulation(seed=1, obs=obs)

    def work():
        pass

    sim.call_at(1.0, work)
    sim.step()
    assert len(profs) == 1


def test_full_system_run_checksum_identical():
    """End-to-end: a real MapReduce run (cluster churn, DFS writes,
    shuffle, heartbeats) produces the identical event checksum, clock
    and job timings under both dispatch modes."""
    from repro.config import (
        ClusterConfig,
        SystemConfig,
        TraceConfig,
        moon_scheduler_config,
    )
    from repro.core import moon_system
    from repro.workloads import sleep_spec

    def run(batch):
        cfg = SystemConfig(
            cluster=ClusterConfig(n_volatile=8, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=0.3),
            scheduler=moon_scheduler_config(),
            seed=13,
        )
        system = moon_system(cfg)
        system.sim.batch_dispatch = batch
        result = system.run_job(
            sleep_spec(5.0, 3.0, n_maps=12, n_reduces=4),
            time_limit=2 * 3600.0,
        )
        system.jobtracker.stop()
        system.namenode.stop()
        return (
            system.sim.executed_events,
            system.sim.now,
            result.succeeded,
            result.elapsed,
        )

    assert run(False) == run(True)
