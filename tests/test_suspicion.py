"""Suspicion-layer tests: observed node state vs ground truth.

Covers the :class:`NodeView` contract (oracle mode delegates to ground
truth, honest modes believe only heartbeats), the
:class:`HonestDetector`'s delayed detection, silence-driven false
positives and phi-accrual adaptive thresholds, the grace-period requeue
with late-result reconciliation and ``wasted_work`` accounting, and the
honest NameNode's serve-until-expiry semantics.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    AvailabilityMonitor,
    Cluster,
    FailureDetector,
    HonestDetector,
    Node,
    NodeKind,
    NodeView,
)
from repro.config import (
    ClusterConfig,
    DetectorConfig,
    NodeSpec,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import MoonSystem
from repro.dfs import FileKind, NodeState, ReplicationFactor
from repro.errors import ConfigError
from repro.traces import AvailabilityTrace
from repro.workloads import sleep_spec


def quiet(mode="timeout", **kw):
    """An honest config with observation noise off: deterministic."""
    kw.setdefault("silences_per_hour", 0.0)
    return DetectorConfig(mode=mode, **kw)


def make_cluster(sim, traces=None, n_dedicated=1, n_volatile=3):
    """Dedicated ids 0..d-1, volatile d..; ``traces`` maps node_id ->
    intervals (duration 100000 s)."""
    spec = NodeSpec()
    nodes = []
    for i in range(n_dedicated):
        nodes.append(Node(i, NodeKind.DEDICATED, spec))
    for j in range(n_volatile):
        nid = n_dedicated + j
        trace = None
        if traces and nid in traces:
            trace = AvailabilityTrace(traces[nid], 100000.0)
        nodes.append(Node(nid, NodeKind.VOLATILE, spec, trace))
    cluster = Cluster(nodes)
    AvailabilityMonitor(sim, cluster)
    return cluster


def honest_system(
    traces, detector, n_dedicated=1, n_volatile=3, seed=9, scheduler=None
):
    from repro.simulation import Simulation

    config = SystemConfig(
        cluster=ClusterConfig(
            n_volatile=n_volatile, n_dedicated=n_dedicated
        ),
        trace=TraceConfig(unavailability_rate=0.0),
        scheduler=scheduler if scheduler is not None else moon_scheduler_config(),
        detector=detector,
        seed=seed,
    )
    sim = Simulation(seed)
    spec = NodeSpec()
    nodes = [Node(i, NodeKind.DEDICATED, spec) for i in range(n_dedicated)]
    for j in range(n_volatile):
        nid = n_dedicated + j
        trace = None
        if traces and nid in traces:
            trace = AvailabilityTrace(traces[nid], 100000.0)
        nodes.append(Node(nid, NodeKind.VOLATILE, spec, trace))
    return MoonSystem(config, cluster=Cluster(nodes))


class TestDetectorConfig:
    def test_oracle_is_the_default_and_not_honest(self):
        cfg = DetectorConfig()
        assert cfg.mode == "oracle"
        assert cfg.honest is False
        assert DetectorConfig(mode="timeout").honest is True
        assert DetectorConfig(mode="adaptive").honest is True

    def test_validation_rejects_bad_fields(self):
        for bad in (
            DetectorConfig(mode="psychic"),
            DetectorConfig(timeout_scale=0.0),
            DetectorConfig(silences_per_hour=-1.0),
            DetectorConfig(mean_silence=0.0),
            DetectorConfig(grace_period=-1.0),
            DetectorConfig(phi=-0.1),
            DetectorConfig(adaptive_cap=0.0),
            DetectorConfig(adaptive_min_samples=0),
        ):
            with pytest.raises(ConfigError):
                bad.validate()


class TestNodeView:
    def test_oracle_believes_ground_truth(self, sim):
        cluster = make_cluster(sim, traces={1: [(10.0, 20.0)]})
        view = NodeView("observer")  # default config: oracle
        node = cluster.node(1)
        assert view.honest is False
        assert view.believes_up(node) is True
        sim.run(until=15.0)
        assert node.available is False
        assert view.believes_up(node) is False
        # Without a detector, suspicion *is* ground truth.
        assert view.is_suspect(node) is True

    def test_honest_observer_has_no_liveness_channel(self, sim):
        cluster = make_cluster(sim, traces={1: [(10.0, 20.0)]})
        view = NodeView("observer", quiet())
        node = cluster.node(1)
        sim.run(until=15.0)
        assert node.available is False
        # Belief never consults the trace; only suspicion state (which
        # consumers carry) reflects the outage, after a delay.
        assert view.believes_up(node) is True

    def test_make_detector_class_per_mode(self, sim):
        cluster = make_cluster(sim)
        oracle = NodeView("a").make_detector(sim, cluster)
        honest = NodeView("b", quiet()).make_detector(sim, cluster)
        assert type(oracle) is FailureDetector
        assert isinstance(honest, HonestDetector)

    def test_is_expired_tracks_longest_threshold(self, sim):
        cluster = make_cluster(sim, traces={1: [(0.0, 1000.0)]})
        view = NodeView("observer", quiet())
        det = view.make_detector(sim, cluster)
        det.add_threshold("suspect", 60.0, lambda n: None, adapt=True)
        det.add_threshold("expiry", 600.0, lambda n: None)
        node = cluster.node(1)
        sim.run(until=100.0)
        assert view.is_suspect(node) is True
        assert view.is_expired(node) is False
        sim.run(until=700.0)
        assert view.is_expired(node) is True


class TestHonestDetection:
    def test_outage_detected_threshold_plus_heartbeat_late(self, sim):
        cluster = make_cluster(sim, traces={1: [(100.0, 400.0)]})
        det = NodeView("o", quiet()).make_detector(
            sim, cluster, heartbeat_interval=3.0
        )
        log = []
        det.add_threshold(
            "suspect",
            60.0,
            lambda n: log.append(("trip", sim.now)),
            lambda n: log.append(("back", sim.now)),
            adapt=True,
        )
        sim.run(until=1000.0)
        assert log == [
            ("trip", pytest.approx(163.0)),
            ("back", pytest.approx(400.0)),
        ]
        lat = sim.obs.metrics.histogram("detector/detection_latency_seconds")
        assert lat.count == 1
        assert lat.mean == pytest.approx(63.0)
        assert sim.obs.metrics.counter("detector/false_positives").value == 0

    def test_timeout_scale_shifts_detection(self, sim):
        cluster = make_cluster(sim, traces={1: [(100.0, 400.0)]})
        det = NodeView("o", quiet(timeout_scale=0.5)).make_detector(
            sim, cluster, heartbeat_interval=3.0
        )
        trips = []
        det.add_threshold("suspect", 60.0, lambda n: trips.append(sim.now))
        sim.run(until=1000.0)
        assert trips == [pytest.approx(133.0)]  # 100 + 60*0.5 + 3

    def test_silences_trip_false_positives_and_recover(self, sim):
        """A healthy, traceless node accumulates false suspicions from
        heartbeat silence alone — and every one recovers."""
        cluster = make_cluster(sim, traces=None)
        cfg = DetectorConfig(
            mode="timeout", silences_per_hour=30.0, mean_silence=120.0
        )
        det = NodeView("o", cfg).make_detector(sim, cluster)
        log = []
        det.add_threshold(
            "suspect",
            60.0,
            lambda n: log.append("trip"),
            lambda n: log.append("back"),
            adapt=True,
        )
        sim.run(until=4 * 3600.0)
        m = sim.obs.metrics
        false = m.counter("detector/false_positives").value
        assert false > 0
        # Every trip recovers except any silence still in progress at
        # the cutoff.
        still_tripped = sum(len(s) for s in det._tripped.values())
        assert m.counter("detector/recoveries").value == false - still_tripped
        assert log.count("trip") == false
        assert log.count("back") == false - still_tripped
        # Ground truth never changed: every node stayed up throughout.
        assert all(n.available for n in cluster.nodes)

    def test_silence_machinery_is_daemon_only(self, sim):
        """Arming silences must not keep a horizonless run alive."""
        cluster = make_cluster(sim, traces=None)
        NodeView("o", DetectorConfig(mode="timeout")).make_detector(
            sim, cluster
        )
        sim.run()  # returns immediately: only daemon events pending
        assert sim.now == 0.0


class TestAdaptiveThresholds:
    def _det(self, sim, cluster, **kw):
        view = NodeView("o", quiet(mode="adaptive", **kw))
        det = view.make_detector(sim, cluster, heartbeat_interval=3.0)
        det.add_threshold("suspect", 60.0, lambda n: None, adapt=True)
        det.add_threshold("expiry", 600.0, lambda n: None)
        return det

    def test_under_sampled_node_uses_configured_threshold(self, sim):
        cluster = make_cluster(sim)
        det = self._det(sim, cluster)
        node = cluster.node(1)
        assert det._effective_threshold(node, 0) == pytest.approx(60.0)
        det._observe_gap(node, 10.0)
        det._observe_gap(node, 10.0)
        assert det._effective_threshold(node, 0) == pytest.approx(60.0)

    def test_quiet_node_earns_tight_threshold(self, sim):
        cluster = make_cluster(sim)
        det = self._det(sim, cluster)
        node = cluster.node(1)
        for _ in range(5):
            det._observe_gap(node, 10.0)
        # mean 10, std 0 -> 10, above the 2*heartbeat floor.
        assert det._effective_threshold(node, 0) == pytest.approx(10.0)

    def test_flappy_node_earns_wide_threshold_up_to_cap(self, sim):
        cluster = make_cluster(sim)
        det = self._det(sim, cluster)
        node = cluster.node(1)
        for gap in (300.0, 500.0, 400.0):
            det._observe_gap(node, gap)
        # mean + phi*std blows past the cap: clamped to 2 * base.
        assert det._effective_threshold(node, 0) == pytest.approx(120.0)

    def test_expiry_judgement_never_adapts(self, sim):
        cluster = make_cluster(sim)
        det = self._det(sim, cluster)
        node = cluster.node(1)
        for _ in range(5):
            det._observe_gap(node, 5.0)
        assert det._effective_threshold(node, 1) == pytest.approx(600.0)

    def test_thresholds_are_per_node(self, sim):
        cluster = make_cluster(sim)
        det = self._det(sim, cluster)
        flappy, steady = cluster.node(1), cluster.node(2)
        for gap in (300.0, 500.0, 400.0):
            det._observe_gap(flappy, gap)
        for _ in range(3):
            det._observe_gap(steady, 8.0)
        assert det._effective_threshold(flappy, 0) == pytest.approx(120.0)
        assert det._effective_threshold(steady, 0) == pytest.approx(8.0)

    def test_real_outages_feed_the_estimator(self, sim):
        cluster = make_cluster(
            sim, traces={1: [(0.0, 200.0), (300.0, 500.0), (600.0, 800.0)]}
        )
        det = self._det(sim, cluster)
        node = cluster.node(1)
        sim.run(until=1000.0)
        gaps = det._gaps[node.node_id]
        assert gaps.n == 3  # one observation per resume
        assert gaps.mean == pytest.approx(203.0)  # outage + heartbeat


class TestHonestNameNode:
    """Satellite: servability is decided by the observed view — a
    suspected-but-alive node keeps serving reads until expiry."""

    def _system_with_block(self, detector):
        system = honest_system(traces=None, detector=detector)
        nn = system.namenode
        f = nn.create_file(
            "/x", FileKind.OPPORTUNISTIC, ReplicationFactor(0, 1), 64.0
        )
        block = f.blocks[0]
        nn.register_replica(block, 2)  # a volatile node, actually up
        return system, nn, block, system.cluster.node(2)

    def test_false_hibernate_keeps_serving_until_expiry(self):
        system, nn, block, node = self._system_with_block(quiet())
        det = system.nn_view.detector
        queue_before = nn.replication_queue_length()
        # Falsely suspect the (alive) replica holder: hibernate is
        # judgement 0, expiry judgement 1 (registration order).
        det._false_trip(node, 0)
        assert node.available is True
        assert nn.node_state(node.node_id) is NodeState.HIBERNATED
        assert nn.node_is_servable(node.node_id) is True
        assert nn.block_availability_now(block) is True
        # First suspicion must not trigger re-replication (detector
        # noise must never become a replication storm).
        assert nn.replication_queue_length() == queue_before
        # Only expiry stops the traffic.
        det._false_trip(node, 1)
        assert nn.node_state(node.node_id) is NodeState.DEAD
        assert nn.node_is_servable(node.node_id) is False
        assert nn.block_availability_now(block) is False

    def test_oracle_hibernated_node_stops_serving(self):
        """The historical (oracle) contract is unchanged: hibernation
        excludes a node from servability immediately."""
        system, nn, block, node = self._system_with_block(
            DetectorConfig()
        )
        node.available = False  # oracle sees ground truth directly
        nn._states[node.node_id] = NodeState.HIBERNATED
        assert nn.node_is_servable(node.node_id) is False
        assert nn.block_availability_now(block) is False

    def test_honest_availability_ignores_ground_truth(self, sim):
        """An undetected outage is invisible: the honest NameNode keeps
        directing reads at the node (clients pay the timeout)."""
        system = honest_system(
            traces={2: [(10.0, 400.0)]}, detector=quiet()
        )
        nn = system.namenode
        f = nn.create_file(
            "/x", FileKind.OPPORTUNISTIC, ReplicationFactor(0, 1), 64.0
        )
        block = f.blocks[0]
        nn.register_replica(block, 2)
        system.sim.run(until=20.0)  # down, but well before detection
        assert system.cluster.node(2).available is False
        assert nn.block_availability_now(block) is True


class TestGraceRequeue:
    """Satellite-adjacent core: suspicion triggers a grace-gated
    requeue; a late result from the suspected node reconciles and the
    duplicated attempt-seconds are accounted as wasted work."""

    def _run(self, detector, outage=(200.0, 500.0)):
        from dataclasses import replace

        # Plain MOON (no hybrid tier) with straggler speculation off,
        # and exactly one 600 s map per volatile slot: the dedicated
        # node is a pure data server and every volatile slot stays busy
        # past the grace window, so MOON's frozen-task rescue has
        # nowhere to launch copies and the grace-period requeue is the
        # ONLY channel that re-duplicates the suspected node's work.
        scheduler = replace(
            moon_scheduler_config(hybrid_aware=False),
            max_speculative_per_task=0,
        )
        system = honest_system(
            traces={1: [outage]},
            detector=detector,
            n_dedicated=1,
            n_volatile=3,
            scheduler=scheduler,
        )
        spec = sleep_spec(600.0, 1.0, n_maps=6, n_reduces=0)
        result = system.run_job(spec, time_limit=4 * 3600.0)
        job = system.jobtracker.jobs[0]
        return system, job, result

    def test_requeue_reconciles_and_accounts_wasted_work(self):
        system, job, result = self._run(quiet(grace_period=60.0))
        assert result.succeeded
        assert job.counters["suspicion_requeues"] >= 1
        assert job.counters["wasted_work_seconds"] > 0.0
        # Reconciliation: every task completed exactly once, nothing
        # lost, nothing double-counted, no attempt left alive.
        for task in job.tasks:
            assert task.complete
            assert (
                sum(1 for a in task.attempts if a.state.value == "succeeded")
                == 1
            )
            assert not task.live_attempts()
        m = system.obs.metrics
        assert m.counter("detector/suspicion_requeues").value >= 1
        assert m.counter("mapreduce/wasted_work_seconds").value > 0.0

    def test_grace_period_rides_out_short_suspicion(self):
        """With a long grace window the suspicion clears before the
        requeue fires: no work is abandoned, nothing is wasted."""
        system, job, result = self._run(
            quiet(grace_period=600.0)  # outage is 300 s; trip at 263
        )
        assert result.succeeded
        assert job.counters["suspicion_requeues"] == 0
        assert job.counters["wasted_work_seconds"] == 0.0

    def test_oracle_never_requeues_on_suspicion(self):
        system, job, result = self._run(DetectorConfig())
        assert result.succeeded
        assert job.counters["suspicion_requeues"] == 0
        assert job.counters["wasted_work_seconds"] == 0.0
        m = system.obs.metrics
        assert m.counter("detector/trips").value == 0
        assert m.counter("detector/false_positives").value == 0


class TestOracleIdentity:
    """``detector=oracle`` must be invisible: plain detectors, zero
    detector events, and byte-stable reruns."""

    def test_oracle_observers_use_plain_detectors(self):
        system = honest_system(traces=None, detector=DetectorConfig())
        assert type(system.nn_view.detector) is FailureDetector
        assert type(system.jt_view.detector) is FailureDetector

    def test_oracle_run_is_event_identical_to_default(self):
        """An explicitly-configured oracle detector changes nothing
        about the simulation — not even the event count."""

        def run(detector):
            system = honest_system(
                traces={1: [(100.0, 400.0)], 2: [(150.0, 300.0)]},
                detector=detector,
            )
            result = system.run_job(
                sleep_spec(120.0, 10.0, n_maps=6, n_reduces=2),
                time_limit=4 * 3600.0,
            )
            return result.elapsed, system.sim.executed_events

        baseline = run(DetectorConfig())
        scaled = run(DetectorConfig(timeout_scale=2.0, grace_period=0.0))
        assert baseline == scaled

    def test_honest_run_is_deterministic_across_systems(self):
        def run():
            system = honest_system(
                traces={1: [(100.0, 400.0)]},
                detector=DetectorConfig(
                    mode="adaptive", silences_per_hour=6.0
                ),
            )
            result = system.run_job(
                sleep_spec(120.0, 10.0, n_maps=6, n_reduces=2),
                time_limit=4 * 3600.0,
            )
            m = system.obs.metrics
            return (
                result.elapsed,
                system.sim.executed_events,
                m.counter("detector/trips").value,
                m.counter("detector/false_positives").value,
            )

        assert run() == run()


class TestChurnCleanup:
    def test_decommission_cancels_silence_machinery(self, sim):
        cluster = make_cluster(sim, n_dedicated=2, n_volatile=2)
        cfg = DetectorConfig(
            mode="timeout", silences_per_hour=30.0, mean_silence=120.0
        )
        det = NodeView("o", cfg).make_detector(sim, cluster)
        det.add_threshold("suspect", 60.0, lambda n: None, adapt=True)
        node = cluster.node(1)
        sim.run(until=600.0)
        cluster.decommission_dedicated(node.node_id)
        cluster.finish_decommission(node.node_id)
        assert node.node_id not in det._silence_arrival
        assert node.node_id not in det._silence_live
        assert node.node_id not in det._tripped
