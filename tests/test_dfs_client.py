"""Tests for the DFS client: write pipelines, reads, adaptive v'."""

from __future__ import annotations

import pytest

from repro.config import DfsConfig
from repro.dfs import DfsClient, FileKind, ReplicationFactor
from repro.errors import BlockUnavailable, WriteDeclined

from helpers import build

RF11 = ReplicationFactor(1, 1)
RF12 = ReplicationFactor(1, 2)
RF03 = ReplicationFactor(0, 3)


class TestWritePipeline:
    def test_reliable_write_places_dedicated_and_volatile(self, sim):
        _, _, nn = build(sim)
        client = DfsClient(nn)
        done = []
        client.write_file(
            "/x", 64.0, FileKind.RELIABLE, RF12,
            client_node=3,
            on_complete=lambda: done.append(sim.now),
            on_fail=lambda e: pytest.fail(f"write failed: {e}"),
        )
        sim.run()
        assert len(done) == 1
        b = nn.file("/x").blocks[0]
        assert len(b.dedicated_replicas) == 1
        assert len(b.volatile_replicas) == 2
        assert 3 in b.replicas  # local-first placement

    def test_write_time_grows_with_replication_degree(self, sim):
        """The Table-II effect: map (write) time scales with the number
        of pipeline stages."""
        from repro.simulation import Simulation

        def time_write(rf):
            s = Simulation(seed=1)
            _, _, nn = build(s, n_volatile=8)
            finished = []
            DfsClient(nn).write_file(
                "/x", 64.0, FileKind.OPPORTUNISTIC, rf, 3,
                on_complete=lambda: finished.append(s.now),
                on_fail=lambda e: pytest.fail(str(e)),
            )
            s.run(until=10000.0)
            return finished[0]

        t1 = time_write(ReplicationFactor(0, 1))
        t3 = time_write(ReplicationFactor(0, 3))
        t5 = time_write(ReplicationFactor(0, 5))
        assert t1 < t3 < t5

    def test_multi_block_file_written_sequentially(self, sim):
        _, _, nn = build(sim)
        client = DfsClient(nn)
        done = []
        client.write_file(
            "/big", 200.0, FileKind.RELIABLE, RF11, 3,
            on_complete=lambda: done.append(1),
            on_fail=lambda e: pytest.fail(str(e)),
            block_size_mb=64.0,
        )
        sim.run()
        f = nn.file("/big")
        assert len(f.blocks) == 4
        assert all(len(b.replicas) == 2 for b in f.blocks)
        assert done == [1]

    def test_pipeline_survives_mid_target_failure(self, sim):
        """A volatile target dying mid-pipeline is skipped; the block
        still lands on the remaining targets and the deficit is queued."""
        traces = {4: [(0.4, 2000.0)]}
        _, _, nn = build(sim, traces=traces)
        client = DfsClient(nn)
        outcome = []
        # Force placement towards node 4 by excluding alternatives:
        # write from node 3 with v=3 (targets: 3 local, dedicated, 4, 5).
        client.write_file(
            "/x", 64.0, FileKind.RELIABLE, ReplicationFactor(1, 3), 3,
            on_complete=lambda: outcome.append("done"),
            on_fail=lambda e: outcome.append("fail"),
        )
        sim.run(until=30.0)
        assert outcome == ["done"]
        b = nn.file("/x").blocks[0]
        assert len(b.replicas) >= 2
        assert 4 not in b.replicas or nn.node_state(4).value != "alive"

    def test_write_fails_when_no_targets(self, sim):
        """All volatile nodes down + no dedicated wanted -> declined."""
        traces = {i: [(0.0, 90000.0)] for i in range(2, 6)}
        _, _, nn = build(sim, traces=traces)
        client = DfsClient(nn)
        sim.run(until=0.5)  # let suspends apply
        errors = []
        client.write_file(
            "/x", 64.0, FileKind.OPPORTUNISTIC, RF03, None,
            on_complete=lambda: pytest.fail("should not complete"),
            on_fail=lambda e: errors.append(e),
        )
        sim.run(until=5.0)
        assert len(errors) == 1
        assert isinstance(errors[0], WriteDeclined)


class TestAdaptiveReplication:
    def test_declined_dedicated_adjusts_v_prime(self, sim):
        """With all dedicated nodes saturated, an opportunistic write is
        declined its dedicated copy and v is raised to meet the goal."""
        _, net, nn = build(sim, n_dedicated=1, n_volatile=8)
        # Saturate the single dedicated node with a long stream: 8 GB at
        # the 80 MB/s NIC is ~100 s of backlog, so the served-bandwidth
        # plateau spans the whole detection window.
        for _ in range(200):
            net.transfer(2, 0, 40.0)
        # Pin the p estimate at 0.5: v' should become 4 (1-0.5^4 > 0.9).
        nn._p_estimate = 0.5
        sim.run(until=60.0)  # let the throttle detector trip
        assert nn.throttle.all_throttled()
        client = DfsClient(nn)
        done = []
        client.write_file(
            "/i", 8.0, FileKind.OPPORTUNISTIC, RF11, 3,
            on_complete=lambda: done.append(1),
            on_fail=lambda e: pytest.fail(str(e)),
        )
        sim.run(until=120.0)
        f = nn.file("/i")
        assert done == [1]
        assert f.adjusted_volatile == 4
        b = f.blocks[0]
        assert len(b.dedicated_replicas) == 0
        assert len(b.volatile_replicas) == 4
        assert nn.counters["writes_declined_dedicated"] >= 1


class TestReads:
    def _staged(self, sim, **kw):
        _, net, nn = build(sim, **kw)
        client = DfsClient(nn)
        f = client.stage_input("/in", 64.0, RF12)
        return net, nn, client, f

    def test_stage_input_materialises_replicas(self, sim):
        _, nn, _, f = self._staged(sim)
        b = f.blocks[0]
        assert len(b.dedicated_replicas) == 1
        assert len(b.volatile_replicas) == 2

    def test_read_prefers_local_replica(self, sim):
        net, nn, client, f = self._staged(sim)
        b = f.blocks[0]
        reader = next(iter(b.volatile_replicas))
        done = []
        client.read_block(b, reader, lambda: done.append(sim.now), lambda e: None)
        sim.run()
        # Local disk read at 60 MB/s: ~1.07 s; remote would queue NIC too.
        assert done[0] == pytest.approx(64.0 / 60.0)

    def test_read_fails_over_to_dedicated_when_volatile_down(self, sim):
        """Volatile replicas down (undetected): the client pays timeouts
        then falls back to the dedicated copy (IV-B last resort)."""
        cfg = DfsConfig(client_read_timeout=5.0)
        net, nn, client, f = self._staged(sim, cfg=cfg)
        b = f.blocks[0]
        for nid in b.volatile_replicas:
            net.node_down(nid)  # down, but NameNode hasn't noticed
        # Read from a volatile node that holds no replica (ids 2..5).
        reader = next(i for i in range(2, 6) if i not in b.replicas)
        done, failed = [], []
        client.read_block(b, reader, lambda: done.append(sim.now), failed.append)
        sim.run()
        assert not failed
        assert len(done) == 1
        assert done[0] >= 2 * 5.0  # paid two timeouts first
        assert nn.counters["read_timeouts"] == 2

    def test_read_fails_when_no_replica_reachable(self, sim):
        net, nn, client, f = self._staged(sim)
        b = f.blocks[0]
        for nid in b.replicas:
            net.node_down(nid)
        failed = []
        client.read_block(b, 5, lambda: pytest.fail("no"), failed.append)
        sim.run()
        assert len(failed) == 1
        assert isinstance(failed[0], BlockUnavailable)

    def test_partial_read_size(self, sim):
        """Shuffle partitions read only their share of a map output."""
        net, nn, client, f = self._staged(sim)
        b = f.blocks[0]
        reader = next(iter(b.volatile_replicas))
        done = []
        client.read_block(
            b, reader, lambda: done.append(sim.now), lambda e: None, size_mb=6.0
        )
        sim.run()
        assert done[0] == pytest.approx(6.0 / 60.0)

    def test_cancelled_read_never_fires(self, sim):
        net, nn, client, f = self._staged(sim)
        b = f.blocks[0]
        fired = []
        op = client.read_block(b, 5, lambda: fired.append(1), lambda e: fired.append(2))
        op.cancel()
        sim.run()
        assert fired == []
