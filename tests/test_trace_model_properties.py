"""Property tests for the AvailabilityTrace data model invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TraceConfig
from repro.errors import TraceError
from repro.traces import AvailabilityTrace, generate_trace


@st.composite
def traces(draw):
    """Random valid traces: sorted non-overlapping intervals."""
    duration = draw(st.floats(min_value=100.0, max_value=10_000.0))
    n = draw(st.integers(min_value=0, max_value=10))
    points = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=duration - 1e-6),
                min_size=2 * n,
                max_size=2 * n,
                unique=True,
            )
        )
    )
    intervals = [
        (points[2 * i], points[2 * i + 1]) for i in range(n)
        if points[2 * i + 1] > points[2 * i]
    ]
    return AvailabilityTrace(intervals, duration)


class TestTransitionConsistency:
    @settings(max_examples=80, deadline=None)
    @given(tr=traces(), t=st.floats(min_value=0.0, max_value=9_999.0))
    def test_property_next_transition_flips_state(self, tr, t):
        """Walking to the next transition always flips availability,
        and the reported post-state matches is_available just after."""
        if t >= tr.duration:
            return
        state = tr.is_available(t)
        nxt = tr.next_transition(t)
        if nxt is None:
            assert state  # stays up forever
            return
        time, avail_after = nxt
        assert time > t
        assert avail_after != state or time >= tr.duration
        # The state at the transition instant itself is the post-state
        # (intervals are half-open [start, end)).
        if time < tr.duration:
            assert tr.is_available(time) == avail_after

    @settings(max_examples=60, deadline=None)
    @given(tr=traces())
    def test_property_walk_covers_all_intervals(self, tr):
        """Following next_transition from 0 visits every boundary."""
        t, hops = 0.0, 0
        seen_down = 0
        state = tr.is_available(0.0)
        while hops < 100:
            nxt = tr.next_transition(t)
            if nxt is None:
                break
            t, avail = nxt
            if not avail:
                pass
            if avail:
                seen_down += 1  # we just left a down interval
            hops += 1
        assert seen_down == len(tr)

    @settings(max_examples=60, deadline=None)
    @given(tr=traces())
    def test_property_rate_in_unit_interval(self, tr):
        assert 0.0 <= tr.unavailability_rate() <= 1.0
        assert tr.unavailable_seconds() == pytest.approx(
            sum(iv.length for iv in tr)
        )

    @settings(max_examples=40, deadline=None)
    @given(tr=traces(), offset=st.floats(min_value=0.0, max_value=5_000.0))
    def test_property_shift_preserves_downtime(self, tr, offset):
        """Cyclic shifting re-arranges outages but conserves total
        downtime (up to boundary-merge rounding)."""
        shifted = tr.shifted(offset)
        assert shifted.duration == tr.duration
        assert shifted.unavailable_seconds() == pytest.approx(
            tr.unavailable_seconds(), abs=1e-6
        )


class TestGeneratedTraceInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        rate=st.floats(min_value=0.05, max_value=0.7),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_property_generator_hits_rate_exactly(self, rate, seed):
        cfg = TraceConfig(unavailability_rate=rate)
        tr = generate_trace(cfg, np.random.default_rng(seed))
        assert tr.unavailability_rate() == pytest.approx(rate, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_property_outages_respect_minimum_shape(self, seed):
        """Outage lengths stay positive and intervals stay disjoint
        after the generator's exact-rate rescaling."""
        cfg = TraceConfig(unavailability_rate=0.4)
        tr = generate_trace(cfg, np.random.default_rng(seed))
        prev_end = -1.0
        for iv in tr:
            assert iv.length > 0
            assert iv.start >= prev_end
            prev_end = iv.end

    def test_negative_time_rejected(self):
        tr = AvailabilityTrace([(1.0, 2.0)], 10.0)
        with pytest.raises(TraceError):
            tr.is_available(-1.0)
