"""Preemption-invariant property tests (SLO-aware preemption, S15).

Random pause/resume/deprioritise/restore sequences are driven against
random job mixes on a churn-free cluster (``rate=0`` isolates the
preemption hooks: nothing else can kill, suspend or re-execute work),
and the machinery must uphold:

* **work conservation** — no completed map is ever re-executed after a
  resume: its attempt list stops growing the moment it completes, and
  the ``map_reexecutions`` counter stays zero;
* **no lost or duplicated attempts** — every attempt ends in exactly
  one terminal state, tracker occupancy returns to zero, the
  speculative-attempt counter matches its O(attempts) recount, and no
  held attempt is left behind on any job;
* **progress is banked** — pausing and resuming is pure delay, never
  rollback: every job still finishes;
* **determinism** — the same seed and the same preemption schedule
  produce identical per-job finish times;
* **``--preempt off`` is byte-identical** to a service without any
  controller: same event count, same rendered report (the service-
  level guarantee behind the unchanged paper-figure goldens).
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.service import (
    MoonService,
    PreemptConfig,
    ServiceConfig,
    bursty_arrivals,
    replay_arrivals,
    sleep_catalog,
)
from repro.workloads import sleep_spec

HOUR = 3600.0
TIME_LIMIT = 6 * HOUR


def make_system(seed=7, n_volatile=6, n_dedicated=2, rate=0.0):
    return moon_system(
        SystemConfig(
            cluster=ClusterConfig(
                n_volatile=n_volatile, n_dedicated=n_dedicated
            ),
            trace=TraceConfig(unavailability_rate=rate),
            scheduler=moon_scheduler_config(),
            seed=seed,
        )
    )


@st.composite
def job_mix(draw):
    n_jobs = draw(st.integers(min_value=2, max_value=4))
    specs = []
    for i in range(n_jobs):
        specs.append(
            sleep_spec(
                map_seconds=draw(st.sampled_from([5.0, 30.0, 120.0])),
                reduce_seconds=draw(st.sampled_from([2.0, 20.0])),
                n_maps=draw(st.integers(min_value=2, max_value=10)),
                n_reduces=draw(st.integers(min_value=0, max_value=2)),
            ).with_(name=f"job-{i}")
        )
    return specs


@st.composite
def preempt_schedule(draw, n_jobs_max=4):
    """A deterministic action script: (delay s, action, job index)."""
    n = draw(st.integers(min_value=3, max_value=10))
    out = []
    t = 0.0
    for _ in range(n):
        t += draw(st.sampled_from([1.0, 15.0, 60.0, 240.0]))
        action = draw(
            st.sampled_from(["pause", "resume", "deprioritise", "restore"])
        )
        out.append((t, action, draw(st.integers(0, n_jobs_max - 1))))
    return out


def drive(system, specs, schedule):
    """Submit the mix, run the action script, drain to completion.

    Returns the jobs plus the attempt-count snapshots taken for every
    task observed complete (the work-conservation witness).
    """
    jt = system.jobtracker
    jobs = [jt.submit(spec) for spec in specs]
    completed_snapshot = {}

    def snapshot():
        for job in jobs:
            for task in job.tasks:
                if task.complete and task.task_id not in completed_snapshot:
                    completed_snapshot[task.task_id] = len(task.attempts)

    for t, action, idx in schedule:
        system.sim.run(until=min(t, TIME_LIMIT))
        snapshot()
        job = jobs[idx % len(jobs)]
        if action == "pause":
            jt.pause_job(job)
        elif action == "resume":
            jt.resume_job(job)
        elif action == "deprioritise":
            jt.deprioritise_job(job)
        else:
            jt.restore_job(job)
        snapshot()
    # Final unwind: whatever is still paused must resume, then the
    # whole mix must drain.
    for job in jobs:
        jt.resume_job(job)
        jt.restore_job(job)
    system.sim.run(
        until=TIME_LIMIT, stop_when=lambda: all(j.finished for j in jobs)
    )
    snapshot()
    return jobs, completed_snapshot


class TestPreemptionInvariants:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        specs=job_mix(),
        schedule=preempt_schedule(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_random_preemption_conserves_work(
        self, specs, schedule, seed
    ):
        system = make_system(seed=seed)
        jobs, snapshot = drive(system, specs, schedule)

        for job in jobs:
            # Progress is banked, never rolled back: everything ends.
            assert job.state.value == "succeeded", job.failure_reason
            # Work conservation: a churn-free cluster re-executes no
            # completed map, with or without preemption in between.
            assert job.counters["map_reexecutions"] == 0
            assert not job.paused and not job.deprioritised
            assert job.held_attempts == []
            # No lost/duplicated attempts: every attempt is terminal,
            # the speculative counter agrees with its recount, and
            # completed tasks never grew new attempts afterwards.
            assert job.speculative_attempts_active() == 0
            assert job.recount_speculative() == 0
            for task in job.tasks:
                assert not task.live_attempts()
                for attempt in task.attempts:
                    assert attempt.finished
                assert len(task.attempts) >= 1
                assert len(task.attempts) == snapshot[task.task_id]

        # Slot accounting drained: no occupancy, no overcommit left.
        from repro.mapreduce.task import TaskType

        for tracker in system.jobtracker.trackers.values():
            assert not tracker.attempts
            assert tracker.occupied(TaskType.MAP) == 0
            assert tracker.occupied(TaskType.REDUCE) == 0
            assert tracker.overcommitted(TaskType.MAP) == 0
            assert tracker.overcommitted(TaskType.REDUCE) == 0

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        specs=job_mix(),
        schedule=preempt_schedule(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_preempted_rerun_is_deterministic(
        self, specs, schedule, seed
    ):
        def finish_times(system):
            jobs, _ = drive(system, specs, schedule)
            return [j.finished_at for j in jobs], system.sim.executed_events

        t1, e1 = finish_times(make_system(seed=seed))
        t2, e2 = finish_times(make_system(seed=seed))
        assert t1 == t2
        assert e1 == e2


class TestPauseSemantics:
    """Deterministic spot checks under the property suite."""

    def test_pause_releases_slots_and_resume_recovers(self):
        system = make_system()
        jt = system.jobtracker
        job = jt.submit(
            sleep_spec(300.0, 60.0, n_maps=8, n_reduces=1)
        )
        system.sim.run(until=30.0)
        busy = sum(t.busy_slots() for t in jt.trackers.values())
        assert busy > 0
        jt.pause_job(job)
        assert job.paused
        assert sum(t.busy_slots() for t in jt.trackers.values()) == 0
        assert all(not a.finished for a in job.held_attempts)
        # Paused jobs are invisible to the assignment walk: time can
        # pass without any progress.
        done_before = job.maps_completed()
        system.sim.run(until=600.0)
        assert job.maps_completed() == done_before
        jt.resume_job(job)
        system.sim.run(until=TIME_LIMIT, stop_when=lambda: job.finished)
        assert job.state.value == "succeeded"
        assert job.counters["preempt_pauses"] == 1
        assert job.counters["preempt_resumes"] == 1

    def test_pause_is_delay_not_rollback(self):
        """A paused-and-resumed run finishes later than an unpaused
        one by at most the pause window plus bounded I/O restart —
        banked compute is never thrown away."""
        def run(paused_for):
            system = make_system()
            jt = system.jobtracker
            job = jt.submit(sleep_spec(120.0, 30.0, n_maps=6, n_reduces=1))
            system.sim.run(until=60.0)
            if paused_for:
                jt.pause_job(job)
                system.sim.run(until=60.0 + paused_for)
                jt.resume_job(job)
            system.sim.run(
                until=TIME_LIMIT, stop_when=lambda: job.finished
            )
            assert job.state.value == "succeeded"
            return job.finished_at

        base = run(0.0)
        paused = run(500.0)
        assert paused > base
        # Generous slack for heartbeat re-assignment + I/O restarts.
        assert paused <= base + 500.0 + 120.0

    def test_physical_resume_does_not_wake_held_attempts(self):
        """The VM-pause path must not undo a job-level hold: a node
        bouncing while its job is paused leaves the work suspended."""
        from repro.mapreduce.execution import AttemptRunner

        system = make_system()
        jt = system.jobtracker
        job = jt.submit(sleep_spec(300.0, 60.0, n_maps=4, n_reduces=0))
        system.sim.run(until=30.0)
        jt.pause_job(job)
        held = [a for a in job.held_attempts if not a.finished]
        assert held
        for attempt in held:
            runner = attempt.runner
            assert isinstance(runner, AttemptRunner)
            assert runner.paused and runner.job_held
            # A stray physical resume (node bounce) is a no-op.
            runner.resume()
            assert runner.paused
        jt.resume_job(job)
        system.sim.run(until=TIME_LIMIT, stop_when=lambda: job.finished)
        assert job.state.value == "succeeded"

    def test_tracker_expiry_during_pause_kills_held_attempts(self):
        """Regression: a tracker expiring mid-pause takes its held
        attempts with it — a pause must not grant resurrection
        semantics across an expiry that kills every registered
        attempt, even if the node later rejoins."""
        system = make_system()
        jt = system.jobtracker
        job = jt.submit(sleep_spec(300.0, 60.0, n_maps=6, n_reduces=1))
        system.sim.run(until=30.0)
        jt.pause_job(job)
        victim_node = next(
            a.node_id for a in job.held_attempts if not a.finished
        )
        node = system.cluster.node(victim_node)
        on_victim = [
            a for a in job.held_attempts if a.node_id == victim_node
        ]
        jt._tracker_dead(node)
        assert all(a.finished for a in on_victim)
        jt._tracker_rejoined(node)
        jt.resume_job(job)
        # The killed work re-runs from scratch; nothing resurrects.
        for a in on_victim:
            assert a.state.value == "killed"
        system.sim.run(until=TIME_LIMIT, stop_when=lambda: job.finished)
        assert job.state.value == "succeeded"

    def test_committing_job_is_not_a_preemption_victim(self):
        """A COMMITTING job holds no task slots — demoting or pausing
        it frees nothing, so the victim walk must skip it."""
        from repro.mapreduce.job import JobState
        from repro.service.preempt import PreemptionController

        system = make_system(seed=3, n_volatile=8, n_dedicated=2)
        service = MoonService(
            system,
            ServiceConfig(
                policy="edf",
                max_in_flight=2,
                horizon=HOUR,
                preempt=PreemptConfig(mode="pause"),
            ),
            replay_arrivals(
                [(0.0, "a",
                  sleep_spec(60.0, 10.0, n_maps=4, n_reduces=1),
                  4 * HOUR)]
            ),
        )
        controller = service.preemptor
        assert isinstance(controller, PreemptionController)
        system.sim.run(until=5.0)
        (_record, job), = service._in_flight
        assert [v[3] for v in controller._victims()] == [job]
        job.state = JobState.COMMITTING
        assert controller._victims() == []
        job.state = JobState.RUNNING
        service.run()
        system.jobtracker.stop()
        system.namenode.stop()

    def test_deprioritised_job_yields_to_normal_work(self):
        """A deprioritised job drops behind a later submission in the
        walk and gets no new speculative copies."""
        system = make_system(n_volatile=2, n_dedicated=1)
        jt = system.jobtracker
        batch = jt.submit(sleep_spec(200.0, 10.0, n_maps=12, n_reduces=0))
        jt.deprioritise_job(batch)
        urgent = jt.submit(sleep_spec(10.0, 5.0, n_maps=4, n_reduces=0))
        assert jt._active_jobs == [urgent, batch]
        system.sim.run(
            until=TIME_LIMIT,
            stop_when=lambda: urgent.finished and batch.finished,
        )
        assert urgent.finished_at < batch.finished_at
        assert batch.counters["speculative_launched"] == 0
        jt.restore_job(batch)
        assert not batch.deprioritised


class TestPreemptOffByteIdentical:
    def test_off_mode_equals_no_controller(self):
        """mode="off" arms nothing: event count and rendered report
        are byte-identical to a service without the controller —
        today's event checksums, unchanged."""
        def one_run(preempt):
            system = make_system(seed=11, rate=0.3)
            arrivals = bursty_arrivals(
                system.sim.rng("service/arrivals"),
                bursts_per_hour=3.0,
                burst_size_mean=5.0,
                horizon=1 * HOUR,
                catalog=sleep_catalog(),
            )
            report = system.run_service(
                arrivals,
                ServiceConfig(
                    policy="edf",
                    max_in_flight=2,
                    horizon=HOUR,
                    preempt=preempt,
                ),
                pattern="bursty",
            )
            system.jobtracker.stop()
            system.namenode.stop()
            return report, system.sim.executed_events

        # The render differs only by the preempt= trailer line, which
        # exists exactly because a controller was configured; strip it
        # before comparing and check the zeroed counters directly.
        base, base_events = one_run(None)
        off, off_events = one_run(PreemptConfig(mode="off"))
        assert off_events == base_events
        assert base.render() == "\n".join(
            line
            for line in off.render().splitlines()
            if not line.startswith("preempt=")
        )
        assert off.preempt == "off"
        assert off.preempt_counts == {
            "deprioritise": 0, "pause": 0, "resume": 0, "restore": 0,
        }
        assert base.to_dict() == {
            k: v for k, v in off.to_dict().items() if k != "preempt"
        }

    def test_preempt_config_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            PreemptConfig(mode="defer").validate()
        with pytest.raises(ConfigError):
            PreemptConfig(interval=0.0).validate()
        with pytest.raises(ConfigError):
            PreemptConfig(max_paused=0).validate()
        with pytest.raises(ConfigError):
            ServiceConfig(preempt=PreemptConfig(mode="nope")).validate()


class TestServicePreemption:
    """The controller acting end-to-end through MoonService."""

    def _entries(self):
        batch = sleep_spec(300.0, 120.0, n_maps=12, n_reduces=2).with_(
            name="batch"
        )
        tight = sleep_spec(20.0, 5.0, n_maps=4, n_reduces=1).with_(
            name="tight"
        )
        return [
            (0.0, "a", batch, 4 * HOUR),
            (0.0, "a", batch, 4 * HOUR),
            (60.0, "b", tight, 300.0),
            (70.0, "b", tight, 300.0),
        ]

    def _run(self, mode):
        system = make_system(seed=3, n_volatile=8, n_dedicated=2)
        service = MoonService(
            system,
            ServiceConfig(
                policy="edf",
                max_in_flight=2,
                horizon=HOUR,
                preempt=PreemptConfig(mode=mode),
            ),
            replay_arrivals(self._entries()),
        )
        report = service.run()
        system.jobtracker.stop()
        system.namenode.stop()
        return report

    def test_pause_rescues_tight_jobs_blocked_by_batch(self):
        off = self._run("off")
        paused = self._run("pause")
        assert off.overall.deadline_misses > 0
        assert (
            paused.overall.deadline_misses < off.overall.deadline_misses
        )
        # Bounded goodput loss: every job still completes.
        assert paused.overall.completed == off.overall.completed
        counts = paused.preempt_counts
        assert counts["pause"] >= 1
        assert counts["resume"] == counts["pause"]
        assert paused.preempt_events
        assert "preempt=pause" in paused.render()

    def test_pause_releases_the_tenant_quota_seat_too(self):
        """Regression: a paused job must stop counting against its
        tenant's quota as well as the global window — otherwise
        pausing tenant A's loose job can never admit tenant A's tight
        job, the pressure never clears, and the pause livelocks until
        the drain limit."""
        batch = sleep_spec(300.0, 120.0, n_maps=12, n_reduces=2).with_(
            name="batch"
        )
        tight = sleep_spec(20.0, 5.0, n_maps=4, n_reduces=1).with_(
            name="tight"
        )
        system = make_system(seed=3, n_volatile=8, n_dedicated=2)
        service = MoonService(
            system,
            ServiceConfig(
                policy="edf",
                max_in_flight=1,
                tenant_quota=1,
                horizon=HOUR,
                preempt=PreemptConfig(mode="pause", escalate_rounds=1),
            ),
            replay_arrivals(
                [
                    (0.0, "a", batch, 4 * HOUR),
                    (60.0, "a", tight, 420.0),
                ]
            ),
        )
        report = service.run()
        system.jobtracker.stop()
        system.namenode.stop()
        # Both jobs complete: the tight one inside the pause window,
        # the batch one after its resume.
        assert report.overall.completed == 2
        assert report.overall.unserved == 0
        assert report.preempt_counts["pause"] == 1
        assert report.preempt_counts["resume"] == 1
        tight_rec = next(
            r for r in report.records if r.workload == "tight"
        )
        assert not tight_rec.missed_deadline

    def test_deprioritise_mode_never_pauses(self):
        report = self._run("deprioritise")
        counts = report.preempt_counts
        assert counts["pause"] == 0
        assert counts["deprioritise"] >= 1

    def test_preempt_reruns_are_deterministic(self):
        r1 = self._run("pause")
        r2 = self._run("pause")
        assert r1.render() == r2.render()
        # job_id carries a process-global counter; the stable identity
        # across runs is the record's admission sequence.
        assert [
            (e.time, e.action, e.record_seq) for e in r1.preempt_events
        ] == [(e.time, e.action, e.record_seq) for e in r2.preempt_events]
