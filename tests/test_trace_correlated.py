"""Tests for the correlated ("lab session") outage generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TraceConfig
from repro.errors import TraceError
from repro.traces import (
    CorrelatedConfig,
    empirical_rate,
    generate_correlated_traces,
    merge_intervals,
    peak_simultaneous_down,
)


def make(rate=0.4, weight=0.5, n_groups=4, **kw):
    return CorrelatedConfig(
        base=TraceConfig(unavailability_rate=rate),
        n_groups=n_groups,
        correlation_weight=weight,
        **kw,
    )


class TestMergeIntervals:
    def test_disjoint_preserved(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlapping_merged(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_touching_merged(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1)]) == [(0, 1), (5, 6)]

    def test_nested_absorbed(self):
        assert merge_intervals([(0, 10), (2, 3)]) == [(0, 10)]

    def test_empty(self):
        assert merge_intervals([]) == []

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0.01, max_value=20),
            ),
            max_size=20,
        )
    )
    def test_property_output_disjoint_and_covering(self, raw):
        pairs = [(s, s + d) for s, d in raw]
        merged = merge_intervals(pairs)
        # Disjoint and sorted.
        for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
            assert e1 < s2
        # Total measure never shrinks below any single input interval
        # and never exceeds the sum of inputs.
        total = sum(e - s for s, e in merged)
        assert total <= sum(e - s for s, e in pairs) + 1e-9
        for s, e in pairs:
            assert any(ms <= s and e <= me for ms, me in merged)


class TestGeneration:
    def test_rate_near_target(self):
        traces = generate_correlated_traces(
            make(rate=0.4), 40, np.random.default_rng(1)
        )
        assert empirical_rate(traces) == pytest.approx(0.4, abs=0.08)

    def test_zero_rate_all_available(self):
        traces = generate_correlated_traces(
            make(rate=0.0), 10, np.random.default_rng(1)
        )
        assert all(t.unavailability_rate() == 0.0 for t in traces)

    def test_no_nodes(self):
        assert generate_correlated_traces(make(), 0, np.random.default_rng(1)) == []

    def test_full_correlation_produces_deep_bursts(self):
        """With all downtime in group sessions, simultaneous-down peaks
        should far exceed what independent outages produce (Fig. 1's
        up-to-90% bursts)."""
        rng = np.random.default_rng(3)
        corr = generate_correlated_traces(
            make(rate=0.4, weight=1.0, n_groups=1), 30, rng
        )
        indep = generate_correlated_traces(
            make(rate=0.4, weight=0.0), 30, np.random.default_rng(3)
        )
        assert peak_simultaneous_down(corr) > peak_simultaneous_down(indep)
        assert peak_simultaneous_down(corr) >= 0.7

    def test_weight_zero_equals_independent_model(self):
        """correlation_weight=0 must reduce to the base generator's
        exact-rate behaviour."""
        traces = generate_correlated_traces(
            make(rate=0.3, weight=0.0), 10, np.random.default_rng(5)
        )
        for t in traces:
            assert t.unavailability_rate() == pytest.approx(0.3, abs=1e-6)

    def test_group_members_share_sessions(self):
        """Within one group at full participation, outage intervals
        coincide across members."""
        cfg = CorrelatedConfig(
            base=TraceConfig(unavailability_rate=0.3),
            n_groups=1,
            correlation_weight=1.0,
            participation=1.0,
        )
        traces = generate_correlated_traces(cfg, 5, np.random.default_rng(7))
        first = [(iv.start, iv.end) for iv in traces[0]]
        for t in traces[1:]:
            assert [(iv.start, iv.end) for iv in t] == first

    def test_validation(self):
        with pytest.raises(TraceError):
            make(n_groups=0).validate()
        with pytest.raises(TraceError):
            make(weight=1.5).validate()
        with pytest.raises(TraceError):
            CorrelatedConfig(participation=0.0).validate()
        with pytest.raises(TraceError):
            generate_correlated_traces(make(), -1, np.random.default_rng(0))


class TestPeakSimultaneousDown:
    def test_empty(self):
        assert peak_simultaneous_down([]) == 0.0

    def test_all_up(self):
        from repro.traces import AvailabilityTrace

        ts = [AvailabilityTrace.always_available(1000.0)] * 3
        assert peak_simultaneous_down(ts) == 0.0

    def test_one_common_outage(self):
        from repro.traces import AvailabilityTrace

        ts = [
            AvailabilityTrace([(100.0, 500.0)], 1000.0),
            AvailabilityTrace([(100.0, 500.0)], 1000.0),
            AvailabilityTrace([], 1000.0),
        ]
        assert peak_simultaneous_down(ts, sample_interval=50.0) == pytest.approx(
            2.0 / 3.0
        )
