"""Tests for the localrt application library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LocalRuntimeError
from repro.localrt import (
    FaultPlan,
    grep_count,
    histogram,
    inverted_index,
    join,
    kmeans,
    kmeans_iteration,
    kmer_count,
    word_count,
)

DOCS = [
    "the quick brown fox",
    "the lazy dog",
    "the quick dog jumps",
]


class TestWordCount:
    def test_counts(self):
        out = word_count(DOCS)
        d = out.as_dict()
        assert d["the"] == 3
        assert d["quick"] == 2
        assert d["fox"] == 1

    def test_case_insensitive(self):
        assert word_count(["Dog dog DOG"]).as_dict() == {"dog": 3}

    def test_combiner_used(self):
        """With a combiner, each map emits at most one pair per word."""
        out = word_count(["a a a a a a"])
        assert out.as_dict() == {"a": 6}

    def test_survives_faults(self):
        out = word_count(DOCS, faults=FaultPlan(map_failure_rate=0.3, seed=1))
        assert out.as_dict()["the"] == 3
        assert out.map_failures > 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.text(alphabet="ab ", max_size=20), max_size=8))
    def test_property_total_count_equals_total_words(self, docs):
        import re

        out = word_count(docs) if docs else None
        expected = sum(
            len(re.findall(r"[A-Za-z0-9']+", d.lower())) for d in docs
        )
        got = sum(out.as_dict().values()) if out else 0
        assert got == expected


class TestGrep:
    def test_per_document_counts(self):
        out = grep_count(DOCS, r"dog")
        assert out.as_dict() == {1: 1, 2: 1}

    def test_regex(self):
        out = grep_count(["aaa", "aba"], r"a+")
        assert out.as_dict() == {0: 1, 1: 2}

    def test_no_match_no_pairs(self):
        assert grep_count(DOCS, r"zebra").pairs == []


class TestInvertedIndex:
    def test_postings_sorted_and_unique(self):
        out = inverted_index(DOCS)
        d = out.as_dict()
        assert d["the"] == [0, 1, 2]
        assert d["dog"] == [1, 2]
        assert d["fox"] == [0]

    def test_word_once_per_doc(self):
        d = inverted_index(["dog dog dog"]).as_dict()
        assert d["dog"] == [0]


class TestJoin:
    def test_inner_join(self):
        left = [(1, "a"), (2, "b")]
        right = [(2, "x"), (3, "y")]
        out = join(left, right)
        assert out.pairs == [(2, ("b", "x"))]

    def test_cross_product_per_key(self):
        left = [(1, "a"), (1, "b")]
        right = [(1, "x"), (1, "y")]
        out = join(left, right)
        assert sorted(v for _k, v in out.pairs) == [
            ("a", "x"), ("a", "y"), ("b", "x"), ("b", "y"),
        ]

    def test_empty_side(self):
        assert join([], [(1, "x")]).pairs == []


class TestKmeans:
    def test_single_iteration_moves_centroids_to_means(self):
        points = [(0.0, 0.0), (0.0, 2.0), (10.0, 0.0), (10.0, 2.0)]
        out = kmeans_iteration(points, [(0.0, 1.0), (10.0, 1.0)])
        got = dict(out.pairs)
        assert got[0] == pytest.approx((0.0, 1.0))
        assert got[1] == pytest.approx((10.0, 1.0))

    def test_empty_cluster_keeps_centroid(self):
        points = [(0.0, 0.0), (1.0, 0.0)]
        out = kmeans_iteration(points, [(0.5, 0.0), (100.0, 0.0)])
        got = dict(out.pairs)
        assert got[1] == pytest.approx((100.0, 0.0))

    def test_converges_on_separated_blobs(self):
        rng = np.random.default_rng(0)
        a = rng.normal((0, 0), 0.3, size=(30, 2))
        b = rng.normal((8, 8), 0.3, size=(30, 2))
        pts = [tuple(p) for p in np.vstack([a, b])]
        centroids, iters = kmeans(pts, k=2, iterations=20, seed=1)
        assert iters < 20  # early convergence
        ordered = sorted(centroids)
        assert ordered[0] == pytest.approx((0, 0), abs=0.3)
        assert ordered[1] == pytest.approx((8, 8), abs=0.3)

    def test_validation(self):
        with pytest.raises(LocalRuntimeError):
            kmeans([(0.0, 0.0)], k=2)
        with pytest.raises(LocalRuntimeError):
            kmeans([(0.0,)], k=0)
        with pytest.raises(LocalRuntimeError):
            kmeans_iteration([(0.0,)], [])


class TestKmerCount:
    def test_threemers(self):
        out = kmer_count(["ACGTACGT"], k=3)
        d = out.as_dict()
        assert d["ACG"] == 2
        assert d["CGT"] == 2
        assert d["GTA"] == 1

    def test_upper_cased(self):
        assert kmer_count(["acgt"], k=4).as_dict() == {"ACGT": 1}

    def test_sequence_shorter_than_k(self):
        assert kmer_count(["AC"], k=3).pairs == []

    def test_bad_k(self):
        with pytest.raises(LocalRuntimeError):
            kmer_count(["ACGT"], k=0)

    def test_total_kmers(self):
        seqs = ["ACGTACGT", "TTTT"]
        out = kmer_count(seqs, k=3)
        assert sum(out.as_dict().values()) == sum(
            len(s) - 2 for s in seqs
        )


class TestHistogram:
    def test_counts_sum_to_n(self):
        values = list(np.linspace(0, 10, 101))
        out = histogram(values, bins=5)
        assert sum(out.as_dict().values()) == 101

    def test_explicit_range(self):
        out = histogram([5.0], bins=10, lo=0.0, hi=10.0)
        assert out.as_dict() == {5: 1}

    def test_validation(self):
        with pytest.raises(LocalRuntimeError):
            histogram([], bins=3)
        with pytest.raises(LocalRuntimeError):
            histogram([1.0], bins=0)
