"""Tests for the MOON scheduler (paper Section V)."""

from __future__ import annotations

import pytest

from repro.config import SchedulerConfig
from repro.dfs import ReplicationFactor
from repro.mapreduce import AttemptState, JobState, TaskType

from helpers import build_mr
from test_mapreduce_basic import tiny_job


def moon_cfg(**kw):
    defaults = dict(
        kind="moon",
        suspension_interval=30.0,
        tracker_expiry_interval=1800.0,
        hybrid_aware=True,
    )
    defaults.update(kw)
    return SchedulerConfig(**defaults)


class TestHybridPlacement:
    def test_dedicated_nodes_run_only_speculative_copies(self, sim):
        """V-C: dedicated slots are best-effort speculative hosts."""
        _, _, nn, jt = build_mr(
            sim, scheduler_cfg=moon_cfg(), n_volatile=4, n_dedicated=2
        )
        job = jt.submit(tiny_job(n_maps=8, n_reduces=2))
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED
        for t in job.tasks:
            for a in t.attempts:
                if a.on_dedicated:
                    assert a.is_speculative

    def test_non_hybrid_moon_keeps_dedicated_as_pure_data_servers(self, sim):
        """V-C: without the hybrid extension, dedicated machines run no
        tasks at all - they only serve data."""
        _, _, nn, jt = build_mr(
            sim,
            scheduler_cfg=moon_cfg(hybrid_aware=False),
            n_volatile=2,
            n_dedicated=2,
        )
        job = jt.submit(tiny_job(n_maps=6, n_reduces=1))
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED
        on_dedicated = [
            a for t in job.tasks for a in t.attempts if a.on_dedicated
        ]
        assert on_dedicated == []

    def test_frozen_task_rescued_on_dedicated_node(self, sim):
        """A task frozen on a suspended volatile node gets a speculative
        copy on a dedicated node and the job completes long before the
        outage ends."""
        traces = {1: [(2.0, 5000.0)]}
        # Homestretch off so the *frozen* path is what rescues here.
        _, _, nn, jt = build_mr(
            sim,
            scheduler_cfg=moon_cfg(homestretch_threshold_pct=0.0),
            n_volatile=1,
            n_dedicated=1,
            traces=traces,
        )
        job = jt.submit(tiny_job(n_maps=1, n_reduces=0, map_cpu_seconds=20.0))
        # Commit may wait for volatile replication until the node
        # returns at t=5000; the rescue itself happens within minutes.
        sim.run(until=8 * 3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED
        assert job.counters["frozen_speculations"] >= 1
        rescued = [
            a for a in job.maps[0].attempts if a.on_dedicated and a.is_speculative
        ]
        assert rescued
        # The dedicated copy finished long before the outage ended.
        assert min(a.finished_at for a in rescued) < 300.0


class TestSpeculativeCap:
    def test_cap_limits_concurrent_speculation(self, sim):
        """V-A: speculative instances stay below cap x available slots."""
        traces = {i: [(5.0, 5000.0)] for i in range(2, 8)}  # 6 of 10 die
        cfg = moon_cfg(speculative_cap_fraction=0.2)
        cluster, _, nn, jt = build_mr(
            sim, scheduler_cfg=cfg, n_volatile=10, n_dedicated=2, traces=traces
        )
        job = jt.submit(tiny_job(n_maps=20, n_reduces=4, map_cpu_seconds=60.0))
        max_seen = 0
        while sim.now < 600.0 and not job.finished:
            sim.run(until=sim.now + 5.0, stop_when=lambda: job.finished)
            cap = 0.2 * jt.available_slots()
            active = job.speculative_attempts_active()
            max_seen = max(max_seen, active)
            assert active <= cap + 1  # +1: one may be mid-launch
        assert max_seen >= 1  # speculation did happen


class TestHomestretch:
    def test_homestretch_replicates_tail_tasks(self, sim):
        """V-B: near completion every remaining task gets >= R copies."""
        cfg = moon_cfg(homestretch_threshold_pct=50.0, homestretch_replicas=2)
        _, _, nn, jt = build_mr(sim, scheduler_cfg=cfg, n_volatile=8)
        job = jt.submit(
            tiny_job(n_maps=4, n_reduces=2, map_cpu_seconds=30.0,
                     reduce_cpu_seconds=30.0)
        )
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED
        assert job.counters["homestretch_speculations"] >= 1
        # Some reduce acquired a second copy without being slow/frozen.
        assert job.counters["duplicated_tasks"] >= 1

    def test_homestretch_disabled_with_zero_threshold(self, sim):
        cfg = moon_cfg(homestretch_threshold_pct=0.0)
        _, _, nn, jt = build_mr(sim, scheduler_cfg=cfg, n_volatile=8)
        job = jt.submit(tiny_job(n_maps=4, n_reduces=2))
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        assert job.counters["homestretch_speculations"] == 0

    def test_task_with_dedicated_copy_skips_homestretch(self, sim):
        """V-C: a dedicated copy is reliable backup enough."""
        cfg = moon_cfg(homestretch_threshold_pct=100.0, homestretch_replicas=3)
        _, _, nn, jt = build_mr(sim, scheduler_cfg=cfg, n_volatile=2,
                                n_dedicated=2)
        job = jt.submit(tiny_job(n_maps=2, n_reduces=1, map_cpu_seconds=40.0))
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        for t in job.tasks:
            dedicated = [a for a in t.attempts if a.on_dedicated]
            if dedicated:
                first_ded = min(a.started_at for a in dedicated)
                later_vol = [
                    a
                    for a in t.attempts
                    if not a.on_dedicated and a.started_at > first_ded
                    and a.is_speculative
                ]
                assert not later_vol


class TestFrozenVsSlow:
    def test_frozen_selected_before_slow(self, sim):
        """V-A: the frozen list is drained before the slow list."""
        # Node 2 suspends early and for long; node 3 stays up but its
        # task will merely be slow relative to average.
        traces = {2: [(5.0, 3000.0)]}
        cfg = moon_cfg(speculative_cap_fraction=0.05)  # room for ~1 spec
        cluster, _, nn, jt = build_mr(
            sim, scheduler_cfg=cfg, n_volatile=4, n_dedicated=1, traces=traces
        )
        job = jt.submit(tiny_job(n_maps=8, n_reduces=0, map_cpu_seconds=120.0))
        sim.run(until=400.0, stop_when=lambda: job.finished)
        frozen_tasks = [t for t in job.maps if t.is_frozen()]
        spec_attempts = [
            a
            for t in job.maps
            for a in t.attempts
            if a.is_speculative
        ]
        if spec_attempts:
            # The earliest speculative copy must target a frozen task.
            first = min(spec_attempts, key=lambda a: a.started_at)
            node2_tasks = {
                t.task_id
                for t in job.maps
                if 2 in {a.node_id for a in t.attempts}
            }
            assert first.task.task_id in node2_tasks
