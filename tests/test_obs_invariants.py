"""Flight-recorder invariants (ISSUE 6).

The observability layer must *observe* the simulation, never perturb
it:

* **obs-off is byte-identical** — a run with the default (disabled)
  recorder renders the same report and executes the same number of
  events as a run with no explicit Observability at all;
* **obs-on never perturbs the sim clock** — arming the tracer changes
  neither the rendered report nor the executed-event checksum;
* **traces are deterministic** — two seeded reruns write byte-identical
  Chrome-trace files;
* **traces are complete** — a pressured run's trace contains queue-wait
  spans, attempt-execution spans, a preemption action and an autoscale
  decision.
"""

from __future__ import annotations

import json

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.obs import Observability, ObsConfig
from repro.service import (
    AutoscaleConfig,
    MoonService,
    PreemptConfig,
    ServiceConfig,
    replay_arrivals,
)
from repro.workloads import sleep_spec

HOUR = 3600.0


def _entries():
    """Two long batch jobs hog the cluster; two tight-SLO jobs arrive
    behind them — the mix that reliably forces pause preemption and,
    with the reactive autoscaler watching the queue, a scale-up."""
    batch = sleep_spec(300.0, 120.0, n_maps=12, n_reduces=2).with_(
        name="batch"
    )
    tight = sleep_spec(20.0, 5.0, n_maps=4, n_reduces=1).with_(
        name="tight"
    )
    return [
        (0.0, "a", batch, 4 * HOUR),
        (0.0, "a", batch, 4 * HOUR),
        (60.0, "b", tight, 300.0),
        (70.0, "b", tight, 300.0),
    ]


def _run(obs=None):
    """One pressured serve run; returns (report, executed_events)."""
    system = moon_system(
        SystemConfig(
            cluster=ClusterConfig(n_volatile=8, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=0.0),
            scheduler=moon_scheduler_config(),
            seed=3,
        ),
        obs=obs,
    )
    service = MoonService(
        system,
        ServiceConfig(
            policy="edf",
            max_in_flight=2,
            horizon=HOUR,
            preempt=PreemptConfig(mode="pause"),
            autoscale=AutoscaleConfig(
                policy="reactive",
                min_dedicated=1,
                max_dedicated=4,
                queue_high=1,
            ),
        ),
        replay_arrivals(_entries()),
    )
    report = service.run()
    system.jobtracker.stop()
    system.namenode.stop()
    return report, system.sim.executed_events


class TestObsOffByteIdentical:
    def test_default_recorder_matches_no_recorder(self):
        plain_report, plain_events = _run(obs=None)
        off_report, off_events = _run(obs=Observability())
        assert plain_report.render() == off_report.render()
        assert plain_events == off_events


class TestObsOnNeverPerturbs:
    def test_tracing_changes_nothing_observable(self):
        off_report, off_events = _run()
        obs = Observability(ObsConfig(trace=True, profile=True))
        on_report, on_events = _run(obs=obs)
        assert off_report.render() == on_report.render()
        assert off_events == on_events
        # ... while actually recording something.
        assert len(obs.tracer.events) > 0
        assert obs.profiler.total_events == on_events


def _fresh_id_streams():
    """Rewind the process-global job/attempt id streams.

    Job and attempt ids (which also name DFS block paths) come from
    module-level counters: two runs in ONE process see different ids,
    while two CLI invocations each start from zero.  Rewinding here
    makes the in-process rerun equivalent to the cross-process case
    the byte-identity guarantee is stated for.
    """
    import itertools

    from repro.mapreduce.job import Job
    from repro.mapreduce.task import TaskAttempt

    Job._ids = itertools.count()
    TaskAttempt._ids = itertools.count()


class TestTraceDeterminism:
    def test_seeded_reruns_write_identical_trace_bytes(self, tmp_path):
        blobs = []
        for i in range(2):
            _fresh_id_streams()
            obs = Observability(ObsConfig(trace=True))
            _run(obs=obs)
            path = tmp_path / f"run{i}.trace.json"
            obs.tracer.write_chrome(str(path))
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]

    def test_metrics_json_is_deterministic(self, tmp_path):
        blobs = []
        for i in range(2):
            obs = Observability()
            _run(obs=obs)
            path = tmp_path / f"run{i}.metrics.json"
            obs.metrics.write_json(str(path))
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]


class TestTraceCompleteness:
    def test_pressured_run_covers_all_required_span_kinds(self):
        obs = Observability(ObsConfig(trace=True))
        report, _ = _run(obs=obs)
        doc = obs.tracer.to_chrome()
        rows = doc["traceEvents"]
        names = {r["name"] for r in rows}
        cats = {r.get("cat") for r in rows}
        # Queue-wait spans: admission after a non-zero wait.
        assert "queue.wait" in names
        # Attempt-execution spans on the per-node lanes.
        assert "attempt" in cats
        # A preemption action (the pause scenario guarantees one).
        assert any(n.startswith("preempt.") for n in names)
        # An autoscale decision (reactive policy watching the queue).
        assert any(n.startswith("autoscale.") for n in names)
        # The trace is loadable Chrome-trace JSON.
        json.dumps(doc)

    def test_metrics_mirror_the_report(self):
        obs = Observability()
        report, _ = _run(obs=obs)
        d = obs.metrics.to_dict()
        assert d["counters"]["service/jobs_admitted"] == 4
        assert d["counters"]["service/preempt/pause"] >= 1
        assert d["histograms"]["service/queue_wait_seconds"]["count"] == 4
