"""Round-trip tests for trace persistence (CSV and JSON)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TraceConfig
from repro.errors import TraceError
from repro.traces import (
    AvailabilityTrace,
    generate_trace,
    load_traces_csv,
    load_traces_json,
    save_traces_csv,
    save_traces_json,
)


def sample_traces(n=5, rate=0.4, seed=11):
    cfg = TraceConfig(unavailability_rate=rate)
    rng = np.random.default_rng(seed)
    return [generate_trace(cfg, rng) for _ in range(n)]


def assert_equal_tracesets(a, b):
    assert len(a) == len(b)
    for ta, tb in zip(a, b):
        assert ta.duration == tb.duration
        assert [(iv.start, iv.end) for iv in ta] == [
            (iv.start, iv.end) for iv in tb
        ]


class TestCsv:
    def test_roundtrip(self, tmp_path):
        traces = sample_traces()
        p = tmp_path / "traces.csv"
        save_traces_csv(p, traces)
        assert_equal_tracesets(traces, load_traces_csv(p))

    def test_node_without_outages_preserved(self, tmp_path):
        traces = [
            AvailabilityTrace([(1.0, 2.0)], 100.0),
            AvailabilityTrace([], 100.0),
            AvailabilityTrace([(5.0, 6.0)], 100.0),
        ]
        p = tmp_path / "t.csv"
        save_traces_csv(p, traces)
        loaded = load_traces_csv(p)
        # Interior all-available nodes survive because the last node
        # anchors the count; a trailing all-available node cannot be
        # represented in CSV (documented limitation of the row format).
        assert len(loaded) == 3
        assert len(loaded[1]) == 0

    def test_missing_duration_header(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("node,start,end\n0,1.0,2.0\n")
        with pytest.raises(TraceError, match="duration"):
            load_traces_csv(p)

    def test_malformed_row(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("# duration=100.0\nnode,start,end\n0,1.0\n")
        with pytest.raises(TraceError, match="3 fields"):
            load_traces_csv(p)

    def test_non_numeric_row(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("# duration=100.0\nnode,start,end\n0,x,2.0\n")
        with pytest.raises(TraceError):
            load_traces_csv(p)

    def test_empty_set_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            save_traces_csv(tmp_path / "x.csv", [])

    def test_mixed_durations_rejected(self, tmp_path):
        ts = [
            AvailabilityTrace([], 100.0),
            AvailabilityTrace([], 200.0),
        ]
        with pytest.raises(TraceError):
            save_traces_csv(tmp_path / "x.csv", ts)


class TestJson:
    def test_roundtrip(self, tmp_path):
        traces = sample_traces()
        p = tmp_path / "traces.json"
        save_traces_json(p, traces)
        assert_equal_tracesets(traces, load_traces_json(p))

    def test_trailing_available_node_preserved(self, tmp_path):
        """JSON represents every node explicitly, including a trailing
        node with no outages — the CSV format's documented gap."""
        traces = [
            AvailabilityTrace([(1.0, 2.0)], 100.0),
            AvailabilityTrace([], 100.0),
        ]
        p = tmp_path / "t.json"
        save_traces_json(p, traces)
        loaded = load_traces_json(p)
        assert len(loaded) == 2
        assert len(loaded[1]) == 0

    def test_wrong_format_rejected(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"format": "something-else"}')
        with pytest.raises(TraceError, match="not a trace document"):
            load_traces_json(p)

    def test_empty_set_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            save_traces_json(tmp_path / "x.json", [])


class TestCrossFormat:
    def test_csv_and_json_agree(self, tmp_path):
        traces = sample_traces(n=3, seed=99)
        pc, pj = tmp_path / "t.csv", tmp_path / "t.json"
        save_traces_csv(pc, traces)
        save_traces_json(pj, traces)
        assert_equal_tracesets(load_traces_csv(pc), load_traces_json(pj))
