"""Tests for the cluster substrate (S4)."""

from __future__ import annotations

import pytest

from repro.cluster import (
    AvailabilityMonitor,
    Cluster,
    FailureDetector,
    Node,
    NodeKind,
    build_cluster,
)
from repro.config import ClusterConfig, NodeSpec, TraceConfig
from repro.errors import ConfigError
from repro.traces import AvailabilityTrace


def make_node(nid, kind=NodeKind.VOLATILE, intervals=(), duration=1000.0):
    trace = AvailabilityTrace(intervals, duration) if intervals else None
    return Node(nid, kind, NodeSpec(), trace)


class TestCluster:
    def test_dedicated_and_volatile_partitions(self):
        nodes = [
            make_node(0, NodeKind.DEDICATED),
            make_node(1),
            make_node(2),
        ]
        c = Cluster(nodes)
        assert [n.node_id for n in c.dedicated] == [0]
        assert [n.node_id for n in c.volatile] == [1, 2]
        assert len(c) == 3

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigError):
            Cluster([make_node(0), make_node(0)])

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            Cluster([])

    def test_unavailable_fraction(self):
        c = Cluster([make_node(0), make_node(1)])
        assert c.unavailable_fraction() == 0.0
        c.nodes[0].available = False
        assert c.unavailable_fraction() == 0.5


class TestBuildCluster:
    def test_paper_layout_ids(self, sim):
        cfg = ClusterConfig(n_volatile=6, n_dedicated=2)
        c = build_cluster(sim, cfg, TraceConfig(unavailability_rate=0.3))
        assert len(c.dedicated) == 2
        assert [n.node_id for n in c.dedicated] == [0, 1]
        assert all(n.trace is None for n in c.dedicated)
        assert all(n.trace is not None for n in c.volatile)

    def test_zero_rate_gives_traceless_volatile(self, sim):
        c = build_cluster(
            sim,
            ClusterConfig(n_volatile=3, n_dedicated=1),
            TraceConfig(unavailability_rate=0.0),
        )
        assert all(n.trace is None for n in c.volatile)

    def test_dedicated_traces_optional(self, sim):
        tr = AvailabilityTrace([(10.0, 20.0)], 100.0)
        c = build_cluster(
            sim,
            ClusterConfig(n_volatile=1, n_dedicated=1),
            None,
            dedicated_traces=[tr],
        )
        assert c.dedicated[0].trace is tr

    def test_traces_depend_only_on_node_index(self, sim):
        """Node i's trace is identical across runs with one seed —
        the property that lets the paper compare policies fairly."""
        from repro.simulation import Simulation

        cfg = ClusterConfig(n_volatile=4, n_dedicated=0)
        tc = TraceConfig(unavailability_rate=0.4)
        c1 = build_cluster(Simulation(seed=5), cfg, tc)
        c2 = build_cluster(Simulation(seed=5), cfg, tc)
        for a, b in zip(c1.volatile, c2.volatile):
            assert a.trace.intervals == b.trace.intervals


class TestMonitor:
    def test_replays_trace_transitions(self, sim):
        node = make_node(0, intervals=[(10.0, 20.0), (30.0, 40.0)])
        c = Cluster([node])
        log = []
        c.on_suspend(lambda n: log.append(("down", sim.now)))
        c.on_resume(lambda n: log.append(("up", sim.now)))
        AvailabilityMonitor(sim, c)
        sim.run()
        assert log == [
            ("down", 10.0),
            ("up", 20.0),
            ("down", 30.0),
            ("up", 40.0),
        ]

    def test_node_down_at_time_zero(self, sim):
        node = make_node(0, intervals=[(0.0, 5.0)])
        c = Cluster([node])
        log = []
        c.on_suspend(lambda n: log.append(("down", sim.now)))
        AvailabilityMonitor(sim, c)
        assert node.available is True  # the t=0 event delivers the suspend
        sim.run(until=0.0)
        assert node.available is False
        assert log == [("down", 0.0)]
        sim.run()
        assert node.available is True

    def test_traceless_node_never_transitions(self, sim):
        c = Cluster([make_node(0)])
        mon = AvailabilityMonitor(sim, c)
        assert mon.scheduled_transitions == 0


class TestFailureDetector:
    def _setup(self, sim, intervals):
        node = make_node(0, intervals=intervals)
        cluster = Cluster([node])
        AvailabilityMonitor(sim, cluster)
        det = FailureDetector(sim, cluster, heartbeat_interval=3.0)
        return node, cluster, det

    def test_trips_after_threshold_plus_heartbeat(self, sim):
        node, _, det = self._setup(sim, [(100.0, 300.0)])
        trips = []
        det.add_threshold("expiry", 60.0, lambda n: trips.append(sim.now))
        sim.run()
        assert trips == [pytest.approx(163.0)]  # 100 + 60 + 3

    def test_short_outage_never_trips(self, sim):
        node, _, det = self._setup(sim, [(100.0, 140.0)])
        trips = []
        det.add_threshold("expiry", 60.0, lambda n: trips.append(sim.now))
        sim.run()
        assert trips == []

    def test_recovery_callback_after_trip(self, sim):
        node, _, det = self._setup(sim, [(100.0, 300.0)])
        log = []
        det.add_threshold(
            "expiry",
            60.0,
            lambda n: log.append(("dead", sim.now)),
            lambda n: log.append(("back", sim.now)),
        )
        sim.run()
        assert log == [("dead", pytest.approx(163.0)), ("back", 300.0)]

    def test_no_recovery_without_trip(self, sim):
        node, _, det = self._setup(sim, [(100.0, 120.0)])
        log = []
        det.add_threshold(
            "expiry", 60.0, lambda n: log.append("dead"), lambda n: log.append("back")
        )
        sim.run()
        assert log == []

    def test_multiple_thresholds_hibernate_then_expire(self, sim):
        """MOON's NameNode: hibernate at 60 s, expire at 600 s."""
        node, _, det = self._setup(sim, [(0.0, 1000.0)])
        log = []
        det.add_threshold("hibernate", 60.0, lambda n: log.append(("h", sim.now)))
        det.add_threshold("expiry", 600.0, lambda n: log.append(("e", sim.now)))
        sim.run()
        assert log == [("h", pytest.approx(63.0)), ("e", pytest.approx(603.0))]

    def test_has_tripped_query(self, sim):
        node, _, det = self._setup(sim, [(0.0, 200.0)])
        det.add_threshold("hibernate", 60.0, lambda n: None)
        sim.run(until=100.0)
        assert det.has_tripped(node, "hibernate") is True
        sim.run()  # node resumes at 200
        assert det.has_tripped(node, "hibernate") is False

    def test_repeated_outages_retrip(self, sim):
        node, _, det = self._setup(sim, [(0.0, 100.0), (200.0, 300.0)])
        trips = []
        det.add_threshold("x", 50.0, lambda n: trips.append(sim.now))
        sim.run()
        assert trips == [pytest.approx(53.0), pytest.approx(253.0)]


class TestFailureDetectorEdgeCases:
    """The ugly instants: flapping, late registration, exact ties."""

    def _setup(self, sim, intervals):
        node = make_node(0, intervals=intervals)
        cluster = Cluster([node])
        AvailabilityMonitor(sim, cluster)
        det = FailureDetector(sim, cluster, heartbeat_interval=3.0)
        return node, cluster, det

    def test_flapping_adjacent_instants_deterministic_order(self, sim):
        """Back-to-back outages sharing an instant: the resume at the
        shared boundary recovers the first trip *before* the second
        outage re-arms, so trip/recover strictly alternate."""
        node, _, det = self._setup(sim, [(100.0, 150.0), (150.0, 400.0)])
        log = []
        det.add_threshold(
            "x",
            40.0,
            lambda n: log.append(("trip", sim.now)),
            lambda n: log.append(("back", sim.now)),
        )
        sim.run()
        assert log == [
            ("trip", pytest.approx(143.0)),  # 100 + 40 + 3
            ("back", pytest.approx(150.0)),
            ("trip", pytest.approx(193.0)),  # 150 + 40 + 3
            ("back", pytest.approx(400.0)),
        ]

    def test_add_threshold_while_node_already_down(self, sim):
        """A judgement registered mid-outage is not armed retroactively
        (its observer missed the silence onset) but watches every
        subsequent outage."""
        node, _, det = self._setup(sim, [(100.0, 200.0), (300.0, 400.0)])
        trips = []
        sim.run(until=120.0)
        assert node.available is False
        det.add_threshold("late", 10.0, lambda n: trips.append(sim.now))
        sim.run()
        assert trips == [pytest.approx(313.0)]  # 300 + 10 + 3 only

    def test_resume_racing_trip_at_same_timestamp(self, sim):
        """Outage ends at the exact instant the judgement would fire:
        node-state events outrank heartbeat judgements, so the resume
        cancels the trip — neither callback runs."""
        node, _, det = self._setup(sim, [(100.0, 160.0)])
        log = []
        det.add_threshold(
            "x",
            57.0,  # trip would land at 100 + 57 + 3 = 160 exactly
            lambda n: log.append(("trip", sim.now)),
            lambda n: log.append(("back", sim.now)),
        )
        sim.run()
        assert log == []
        assert det.has_tripped(node, "x") is False
