"""LATE per-tick ranking memoisation is byte-identical to the original
per-slot recompute.

`LateScheduler._ranked_by_time_left` memoises per-task rates and the
ranked list per tick; `_ranked_by_time_left_reference` is the original
computation kept as the equivalence oracle.  Both are driven over the
same churn scenarios and every observable — assignment history, event
counts, counters — must match exactly.
"""

from __future__ import annotations

import pytest

from repro.config import SchedulerConfig
from repro.scheduling.late import LateScheduler
from repro.simulation import Simulation
from repro.workloads import sleep_spec

from helpers import build_mr


def late_cfg(**kw):
    return SchedulerConfig(
        kind="late", tracker_expiry_interval=600.0, hybrid_aware=False, **kw
    )


def _run(traces, use_reference, n_maps=10, until=1500.0):
    sim = Simulation(seed=3)
    _, _, _, jt = build_mr(
        sim, scheduler_cfg=late_cfg(), traces=traces,
        n_volatile=4, n_dedicated=1,
    )
    if use_reference:
        jt.policy._ranked_by_time_left = (
            jt.policy._ranked_by_time_left_reference
        )
    assignments = []
    original_launch = jt.launch

    def recording_launch(task, tracker, speculative):
        # strip the job id: the global Job counter differs between the
        # two runs, but task identity within the job must match
        assignments.append(
            (sim.now, task.task_id.split("-", 1)[1], tracker.node_id,
             speculative)
        )
        return original_launch(task, tracker, speculative)

    jt.launch = recording_launch
    job = jt.submit(sleep_spec(120.0, 3.0, n_maps=n_maps, n_reduces=1))
    sim.run(until=until, stop_when=lambda: job.finished)
    return {
        "assignments": assignments,
        "events": sim.executed_events,
        "state": job.state.value,
        "counters": dict(job.counters),
        "now": sim.now,
    }


TRACE_SETS = [
    {3: [(50.0, 2000.0)]},  # one node disappears mid-wave
    {2: [(30.0, 400.0)], 4: [(80.0, 900.0)]},  # staggered churn
    {1: [(20.0, 60.0), (120.0, 500.0)]},  # flap then long outage
]


@pytest.mark.parametrize("traces", TRACE_SETS)
def test_memo_matches_reference(traces):
    memo = _run(traces, use_reference=False)
    ref = _run(traces, use_reference=True)
    assert memo == ref
    # the scenario must actually exercise the speculative ranking,
    # otherwise this equivalence is vacuous
    assert any(spec for (_, _, _, spec) in memo["assignments"])


def test_rates_cached_within_tick():
    """The per-(job, type) rate memo is populated at most once per task
    per tick and reused across slot requests."""
    sim = Simulation(seed=3)
    _, _, _, jt = build_mr(
        sim, scheduler_cfg=late_cfg(), traces={3: [(50.0, 2000.0)]},
        n_volatile=4, n_dedicated=1,
    )
    policy = jt.policy
    assert isinstance(policy, LateScheduler)
    calls = []
    original = policy._rate

    def counting_rate(task):
        calls.append(task.task_id)
        return original(task)

    policy._rate = counting_rate
    job = jt.submit(sleep_spec(120.0, 3.0, n_maps=10, n_reduces=1))
    sim.run(until=400.0, stop_when=lambda: job.finished)
    # every (tick, task) pair computes its rate at most once
    assert len(calls) == len(set(zip(calls, _tick_marks(calls))))


def _tick_marks(calls):
    # calls are appended in tick order; a task_id repeating means a new
    # tick (the memo was cleared), so number the repeats
    seen: dict = {}
    marks = []
    for c in calls:
        seen[c] = seen.get(c, 0) + 1
        marks.append(seen[c])
    return marks
