"""Tests for daemon-event semantics in the discrete-event engine.

Daemon events model self-re-arming infrastructure (heartbeats,
periodic scans): they must never keep a horizonless ``run()`` alive,
while foreground events (real work) must always drain first.
"""

from __future__ import annotations

import pytest

from repro.simulation import PeriodicTask, Simulation
from repro.simulation.event import EventQueue


class TestDaemonEvents:
    def test_horizonless_run_ignores_daemons(self):
        sim = Simulation()
        ticks = []
        PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        end = sim.run()  # would never return if daemons kept it alive
        assert end == 0.0
        assert ticks == []

    def test_daemons_fire_while_foreground_pending(self):
        sim = Simulation()
        ticks = []
        PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        done = []
        sim.call_after(3.5, lambda: done.append(sim.now))
        sim.run()
        # The periodic daemon ran at 1, 2, 3 on the way to t=3.5.
        assert ticks == [1.0, 2.0, 3.0]
        assert done == [3.5]

    def test_explicit_until_runs_daemons(self):
        sim = Simulation()
        ticks = []
        PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run(until=5.0)
        assert len(ticks) == 5

    def test_foreground_spawned_by_daemon_keeps_run_alive(self):
        """A daemon tick that schedules real work (e.g. a replication
        scan issuing a transfer) extends a horizonless run until that
        work completes."""
        sim = Simulation()
        spawned = []

        def tick():
            if sim.now == 1.0:  # first tick spawns a foreground event
                sim.call_after(0.5, lambda: spawned.append(sim.now))

        PeriodicTask(sim, 1.0, tick)
        sim.call_after(1.0, lambda: None)  # keeps sim alive to t=1
        sim.run()
        assert spawned == [1.5]

    def test_non_daemon_periodic_task(self):
        sim = Simulation()
        ticks = []
        task = PeriodicTask(
            sim, 1.0, lambda: ticks.append(sim.now), daemon=False
        )
        sim.run(max_events=3)
        assert ticks == [1.0, 2.0, 3.0]
        task.stop()
        sim.run()
        assert len(ticks) == 3

    def test_foreground_count(self):
        sim = Simulation()
        assert sim.pending_foreground_events() == 0
        sim.call_after(1.0, lambda: None)
        sim.call_after(2.0, lambda: None, daemon=True)
        assert sim.pending_foreground_events() == 1
        assert sim.pending_events() == 2


class TestEventCancellation:
    def test_cancel_removes_from_counts(self):
        q = EventQueue()
        e = q.push(1.0, 0, lambda: None, ())
        assert q.foreground == 1
        e.cancel()
        assert q.foreground == 0
        assert len(q) == 0

    def test_cancel_after_pop_is_noop(self):
        """Cancelling an event that already fired must not corrupt the
        live counters (the lazy-deletion bookkeeping bug class)."""
        q = EventQueue()
        e1 = q.push(1.0, 0, lambda: None, ())
        q.push(2.0, 0, lambda: None, ())
        popped = q.pop()
        assert popped is e1
        e1.cancel()  # already out of the queue
        assert len(q) == 1
        assert q.foreground == 1

    def test_double_cancel_is_noop(self):
        q = EventQueue()
        e = q.push(1.0, 0, lambda: None, ())
        e.cancel()
        e.cancel()
        assert len(q) == 0
        assert q.foreground == 0

    def test_daemon_cancel_tracked_separately(self):
        q = EventQueue()
        d = q.push(1.0, 0, lambda: None, (), daemon=True)
        f = q.push(2.0, 0, lambda: None, ())
        assert (len(q), q.foreground) == (2, 1)
        d.cancel()
        assert (len(q), q.foreground) == (1, 1)
        f.cancel()
        assert (len(q), q.foreground) == (0, 0)


class TestSystemIdleDrain:
    def test_namenode_services_do_not_hang_horizonless_run(self):
        """The regression that motivated daemon events: a NameNode's
        periodic services (replication scan, p-estimation, throttle
        sampling) must not keep ``sim.run()`` spinning forever."""
        from repro.cluster import AvailabilityMonitor, Cluster, Node, NodeKind
        from repro.config import DfsConfig, NodeSpec
        from repro.dfs import NameNode
        from repro.net import FifoNetwork

        sim = Simulation(seed=0)
        nodes = [Node(0, NodeKind.DEDICATED, NodeSpec()),
                 Node(1, NodeKind.VOLATILE, NodeSpec())]
        cluster = Cluster(nodes)
        AvailabilityMonitor(sim, cluster)
        net = FifoNetwork(sim)
        for n in nodes:
            net.register_node(n.node_id, 60.0, 80.0)
        NameNode(sim, cluster, net, DfsConfig())
        end = sim.run()  # must terminate promptly
        assert end < 60.0
