"""Tests for MOON's suspension judgement (paper V-A).

The defining behavioural difference from Hadoop: after
SuspensionInterval without heartbeats, a tracker's attempts become
*inactive* — flagged for frozen-task handling but **not killed**, in
the hope the node resumes.  Kills happen only at the (much longer)
TrackerExpiryInterval.
"""

from __future__ import annotations

import pytest

from repro.config import SchedulerConfig
from repro.mapreduce.task import AttemptState
from repro.simulation import Simulation
from repro.workloads import sleep_spec

from helpers import build_mr


def moon_cfg(**kw):
    args = dict(
        kind="moon",
        suspension_interval=60.0,
        tracker_expiry_interval=1800.0,
    )
    args.update(kw)
    return SchedulerConfig(**args)


@pytest.fixture
def sim():
    return Simulation(seed=0)


class TestSuspensionJudgement:
    def test_attempts_flagged_inactive_not_killed(self, sim):
        traces = {3: [(10.0, 500.0)]}
        cluster, _, _, jt = build_mr(
            sim, scheduler_cfg=moon_cfg(), traces=traces,
            n_volatile=3, n_dedicated=1,
        )
        job = jt.submit(sleep_spec(300.0, 5.0, n_maps=6, n_reduces=1))
        sim.run(until=120.0)  # past SuspensionInterval, before expiry
        on3 = [
            a for t in job.maps for a in t.attempts if a.node_id == 3
        ]
        assert on3, "node 3 should have been assigned work"
        assert all(a.state is AttemptState.INACTIVE for a in on3)

    def test_inactive_attempt_resumes_and_completes(self, sim):
        """The paper's hope realised: an outage shorter than the
        SuspensionInterval never even raises suspicion — the attempt
        pauses physically, resumes, and completes with no work wasted
        and no speculation."""
        traces = {3: [(10.0, 40.0)]}  # 30 s blip < 60 s interval
        _, _, _, jt = build_mr(
            sim, scheduler_cfg=moon_cfg(), traces=traces,
            n_volatile=3, n_dedicated=1,
        )
        job = jt.submit(sleep_spec(60.0, 5.0, n_maps=6, n_reduces=1))
        sim.run(until=3000.0, stop_when=lambda: job.finished)
        assert job.state.value == "succeeded"
        succeeded_on_3 = [
            a
            for t in job.maps
            for a in t.attempts
            if a.node_id == 3 and a.state is AttemptState.SUCCEEDED
        ]
        assert succeeded_on_3, "resumed attempts should complete"
        # No frozen-task rescues were ever needed (the blip was below
        # the suspicion threshold); any speculation is homestretch-only.
        assert job.counters["frozen_speculations"] == 0

    def test_recovery_clears_inactive_flag(self, sim):
        # hybrid_aware off so the dedicated node cannot host rescue
        # copies — the suspended tasks must stay frozen until resume.
        traces = {3: [(10.0, 100.0)]}
        _, _, _, jt = build_mr(
            sim, scheduler_cfg=moon_cfg(hybrid_aware=False), traces=traces,
            n_volatile=3, n_dedicated=1,
        )
        job = jt.submit(sleep_spec(400.0, 5.0, n_maps=8, n_reduces=1))
        sim.run(until=90.0)
        frozen_mid_outage = [t for t in job.maps if t.is_frozen()]
        assert frozen_mid_outage
        sim.run(until=200.0)  # node back since t=100, heartbeats again
        assert not any(t.is_frozen() for t in frozen_mid_outage
                       if not t.complete)

    def test_expiry_finally_kills(self, sim):
        cfg = moon_cfg(tracker_expiry_interval=300.0)
        traces = {3: [(10.0, 5000.0)]}
        _, _, _, jt = build_mr(
            sim, scheduler_cfg=cfg, traces=traces,
            n_volatile=3, n_dedicated=1,
        )
        job = jt.submit(sleep_spec(600.0, 5.0, n_maps=6, n_reduces=1))
        sim.run(until=400.0)  # past the 300 s expiry
        on3 = [a for t in job.maps for a in t.attempts if a.node_id == 3]
        assert on3
        assert all(a.state is AttemptState.KILLED for a in on3)


class TestCapacityAccounting:
    def test_available_slots_includes_suspended_trackers(self, sim):
        """Suspended trackers' slots stay in the speculative budget's
        denominator; only *dead* trackers drop out (V-A discussion in
        DESIGN.md)."""
        traces = {3: [(10.0, 5000.0)]}
        _, _, _, jt = build_mr(
            sim, scheduler_cfg=moon_cfg(tracker_expiry_interval=600.0),
            traces=traces, n_volatile=3, n_dedicated=1,
        )
        jt.submit(sleep_spec(300.0, 5.0, n_maps=6, n_reduces=1))
        total = sum(t.total_slots() for t in jt.trackers.values())
        sim.run(until=120.0)  # node 3 suspected, not dead
        assert jt.trackers[3].suspected
        assert jt.available_slots() == total
        sim.run(until=700.0)  # node 3 now expired
        assert jt.trackers[3].dead
        assert jt.available_slots() == total - jt.trackers[3].total_slots()
