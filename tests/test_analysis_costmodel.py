"""Tests for the replication-strategy cost model."""

from __future__ import annotations

import pytest

from repro.analysis import (
    hybrid_curve,
    strategy_table,
    volatile_only_curve,
)
from repro.analysis.costmodel import cheapest_meeting
from repro.errors import DfsError


class TestCurves:
    def test_vo_curve_monotone_availability(self):
        curve = volatile_only_curve(0.4)
        av = [pt.availability for pt in curve]
        assert all(a < b for a, b in zip(av, av[1:]))

    def test_vo_traffic_linear(self):
        curve = volatile_only_curve(0.4, block_mb=64.0)
        assert [pt.traffic_mb for pt in curve[:3]] == [0.0, 64.0, 128.0]

    def test_hybrid_point_zero_volatile(self):
        curve = hybrid_curve(0.4, p_dedicated=0.001)
        first = curve[0]
        assert first.dedicated == 1 and first.volatile == 0
        assert first.availability == pytest.approx(0.999)

    def test_paper_section_i_eleven_replicas(self):
        """p=0.4, goal 99.99% -> 11 volatile-only replicas."""
        cost = cheapest_meeting(volatile_only_curve(0.4), 0.9999)
        assert cost.feasible
        assert cost.point.volatile == 11

    def test_paper_section_iii_one_plus_three(self):
        """Same goal with a dedicated copy: {1,3} suffices."""
        cost = cheapest_meeting(hybrid_curve(0.4, 0.001), 0.9999)
        assert cost.feasible
        assert cost.point.volatile <= 3
        assert cost.point.total_replicas <= 4

    def test_hybrid_always_cheaper_or_equal(self):
        for goal in (0.9, 0.99, 0.999, 0.9999):
            vo = cheapest_meeting(volatile_only_curve(0.4, 16), goal)
            hy = cheapest_meeting(hybrid_curve(0.4, 0.001, 16), goal)
            assert hy.point.total_replicas <= vo.point.total_replicas

    def test_infeasible_goal(self):
        cost = cheapest_meeting(volatile_only_curve(0.9, max_replicas=2), 0.9999)
        assert not cost.feasible
        assert cost.point is None

    def test_validation(self):
        with pytest.raises(DfsError):
            volatile_only_curve(0.4, max_replicas=0)
        with pytest.raises(DfsError):
            hybrid_curve(0.4, max_volatile=-1)
        with pytest.raises(DfsError):
            cheapest_meeting(volatile_only_curve(0.4), 1.5)


class TestStrategyTable:
    def test_table_mentions_both_strategies(self):
        text = strategy_table(0.4, 0.9999)
        assert "volatile-only" in text
        assert "hybrid" in text
        assert "{0,11}" in text
        assert "saves" in text

    def test_infeasible_rendered(self):
        text = strategy_table(0.9, 0.999999, max_replicas=3)
        assert "infeasible" in text
