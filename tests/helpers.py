"""Shared builders for DFS/MapReduce tests."""

from __future__ import annotations

from repro.cluster import (
    AvailabilityMonitor,
    Cluster,
    Node,
    NodeKind,
    connect_network,
)
from repro.config import DfsConfig, NodeSpec
from repro.dfs import NameNode
from repro.net import FifoNetwork
from repro.traces import AvailabilityTrace


def build_mr(
    sim,
    scheduler_cfg=None,
    shuffle_cfg=None,
    n_dedicated=2,
    n_volatile=4,
    traces=None,
    dfs_cfg=None,
    spec=None,
):
    """Full stack for MapReduce tests; returns (cluster, net, nn, jt)."""
    from repro.config import SchedulerConfig, ShuffleConfig
    from repro.mapreduce import JobTracker
    from repro.scheduling import make_scheduler

    cluster, net, nn = build(
        sim, n_dedicated=n_dedicated, n_volatile=n_volatile,
        traces=traces, cfg=dfs_cfg, spec=spec,
    )
    scheduler_cfg = scheduler_cfg or SchedulerConfig()
    shuffle_cfg = shuffle_cfg or ShuffleConfig()
    jt = JobTracker(
        sim, cluster, nn, scheduler_cfg, shuffle_cfg,
        make_scheduler(scheduler_cfg),
    )
    return cluster, net, nn, jt


def build(sim, n_dedicated=2, n_volatile=4, traces=None, cfg=None, spec=None):
    """Small test cluster: dedicated ids 0..d-1, volatile d..d+v-1.

    ``traces`` maps node_id -> list of (start, end) unavailable
    intervals (duration 100000 s).
    """
    spec = spec or NodeSpec()
    nodes = []
    for i in range(n_dedicated):
        nodes.append(Node(i, NodeKind.DEDICATED, spec))
    for j in range(n_volatile):
        nid = n_dedicated + j
        trace = None
        if traces and nid in traces:
            trace = AvailabilityTrace(traces[nid], 100000.0)
        nodes.append(Node(nid, NodeKind.VOLATILE, spec, trace))
    cluster = Cluster(nodes)
    AvailabilityMonitor(sim, cluster)
    net = FifoNetwork(sim)
    for n in nodes:
        net.register_node(n.node_id, n.spec.disk_mbps, n.spec.nic_mbps)
    connect_network(cluster, net)
    nn = NameNode(sim, cluster, net, cfg or DfsConfig())
    return cluster, net, nn
