"""Unit + property tests for the discrete-event engine (S1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation import (
    PRIORITY_NODE_STATE,
    PRIORITY_TRANSFER,
    PeriodicTask,
    Simulation,
)


class TestScheduling:
    def test_call_after_runs_in_order(self, sim):
        log = []
        sim.call_after(2.0, log.append, "b")
        sim.call_after(1.0, log.append, "a")
        sim.call_after(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_call_at_absolute_time(self, sim):
        seen = []
        sim.call_at(5.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.5]

    def test_same_time_fifo_by_seq(self, sim):
        log = []
        for i in range(10):
            sim.call_at(1.0, log.append, i)
        sim.run()
        assert log == list(range(10))

    def test_priority_orders_same_timestamp(self, sim):
        log = []
        sim.call_at(1.0, log.append, "transfer", priority=PRIORITY_TRANSFER)
        sim.call_at(1.0, log.append, "node", priority=PRIORITY_NODE_STATE)
        sim.run()
        assert log == ["node", "transfer"]

    def test_cannot_schedule_in_past(self, sim):
        sim.call_after(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_after(-1.0, lambda: None)

    def test_events_can_schedule_events(self, sim):
        log = []

        def first():
            log.append(sim.now)
            sim.call_after(2.0, second)

        def second():
            log.append(sim.now)

        sim.call_after(1.0, first)
        sim.run()
        assert log == [1.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_run(self, sim):
        log = []
        ev = sim.call_after(1.0, log.append, "x")
        ev.cancel()
        sim.run()
        assert log == []
        assert sim.pending_events() == 0

    def test_double_cancel_is_safe(self, sim):
        ev = sim.call_after(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert sim.pending_events() == 0

    def test_cancel_one_of_many(self, sim):
        log = []
        keep = sim.call_after(1.0, log.append, "keep")
        drop = sim.call_after(1.0, log.append, "drop")
        drop.cancel()
        sim.run()
        assert log == ["keep"]
        assert keep.active is True


class TestRun:
    def test_run_until_stops_clock_at_limit(self, sim):
        sim.call_after(10.0, lambda: None)
        t = sim.run(until=4.0)
        assert t == 4.0
        assert sim.pending_events() == 1

    def test_run_until_resumable(self, sim):
        log = []
        sim.call_after(10.0, log.append, "late")
        sim.run(until=4.0)
        sim.run()
        assert log == ["late"]

    def test_stop_when_predicate(self, sim):
        log = []
        for i in range(10):
            sim.call_after(float(i + 1), log.append, i)
        sim.run(stop_when=lambda: len(log) >= 3)
        assert log == [0, 1, 2]

    def test_max_events(self, sim):
        log = []
        for i in range(10):
            sim.call_after(float(i + 1), log.append, i)
        sim.run(max_events=5)
        assert len(log) == 5

    def test_run_not_reentrant(self, sim):
        def evil():
            sim.run()

        sim.call_after(1.0, evil)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step(self, sim):
        log = []
        sim.call_after(1.0, log.append, 1)
        assert sim.step() is True
        assert log == [1]
        assert sim.step() is False

    def test_executed_events_counter(self, sim):
        for i in range(7):
            sim.call_after(1.0, lambda: None)
        sim.run()
        assert sim.executed_events == 7


class TestPeriodicTask:
    def test_fires_on_interval(self, sim):
        ticks = []
        PeriodicTask(sim, 5.0, lambda: ticks.append(sim.now))
        sim.run(until=22.0)
        assert ticks == [5.0, 10.0, 15.0, 20.0]

    def test_stop_halts(self, sim):
        ticks = []
        task = PeriodicTask(sim, 5.0, lambda: ticks.append(sim.now))
        sim.call_at(12.0, task.stop)
        sim.run(until=100.0)
        assert ticks == [5.0, 10.0]

    def test_stop_from_within_callback(self, sim):
        ticks = []
        task = None

        def cb():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()

        task = PeriodicTask(sim, 1.0, cb)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_start_after_override(self, sim):
        ticks = []
        PeriodicTask(sim, 5.0, lambda: ticks.append(sim.now), start_after=0.5)
        sim.run(until=11.0)
        assert ticks == [0.5, 5.5, 10.5]

    def test_bad_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 0.0, lambda: None)


class TestRngStreams:
    def test_named_streams_are_independent(self):
        a = Simulation(seed=7)
        b = Simulation(seed=7)
        # Consuming from one stream must not perturb another.
        a.rng("x").random(100)
        ax = a.rng("y").random(5)
        bx = b.rng("y").random(5)
        assert ax.tolist() == bx.tolist()

    def test_same_seed_same_draws(self):
        assert (
            Simulation(seed=3).rng("t").random(8).tolist()
            == Simulation(seed=3).rng("t").random(8).tolist()
        )

    def test_different_seeds_differ(self):
        assert (
            Simulation(seed=3).rng("t").random(8).tolist()
            != Simulation(seed=4).rng("t").random(8).tolist()
        )

    def test_indexed_streams_differ(self, sim):
        assert (
            sim.rng_indexed("trace", 0).random(4).tolist()
            != sim.rng_indexed("trace", 1).random(4).tolist()
        )


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
def test_property_events_fire_in_nondecreasing_time_order(delays):
    """However events are scheduled, execution times never go backwards."""
    sim = Simulation(seed=0)
    fired = []
    for d in delays:
        sim.call_after(d, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_property_cancelled_subset_never_fires(data):
    sim = Simulation(seed=0)
    n = data.draw(st.integers(min_value=1, max_value=30))
    events = [sim.call_after(float(i), lambda i=i: fired.append(i)) for i in range(n)]
    fired: list = []
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
    )
    for i in to_cancel:
        events[i].cancel()
    sim.run()
    assert set(fired) == set(range(n)) - to_cancel
