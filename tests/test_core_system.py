"""Tests for the top-level system assembly (S10)."""

from __future__ import annotations

import pytest

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    hadoop_scheduler_config,
    moon_scheduler_config,
)
from repro.core import MoonSystem, hadoop_system, moon_system
from repro.errors import ConfigError
from repro.workloads import sleep_spec


def small_cfg(rate=0.0, scheduler=None, seed=3, n_volatile=8, n_dedicated=2):
    return SystemConfig(
        cluster=ClusterConfig(n_volatile=n_volatile, n_dedicated=n_dedicated),
        trace=TraceConfig(unavailability_rate=rate),
        scheduler=scheduler or moon_scheduler_config(),
        seed=seed,
    )


class TestMoonSystem:
    def test_runs_a_job_end_to_end(self):
        system = moon_system(small_cfg())
        res = system.run_job(sleep_spec(3.0, 2.0, n_maps=8, n_reduces=2))
        assert res.succeeded
        assert res.elapsed > 0
        assert res.metrics.profile.avg_map_time >= 3.0

    def test_cluster_matches_config(self):
        system = moon_system(small_cfg())
        assert len(system.cluster.dedicated) == 2
        assert len(system.cluster.volatile) == 8

    def test_run_jobs_concurrently(self):
        system = moon_system(small_cfg())
        specs = [
            sleep_spec(2.0, 1.0, n_maps=4, n_reduces=1),
            sleep_spec(2.0, 1.0, n_maps=4, n_reduces=1),
        ]
        results = system.run_jobs(specs)
        assert all(r.succeeded for r in results)

    def test_deterministic_given_seed(self):
        r1 = moon_system(small_cfg(rate=0.3, seed=9)).run_job(
            sleep_spec(5.0, 3.0, n_maps=12, n_reduces=3)
        )
        r2 = moon_system(small_cfg(rate=0.3, seed=9)).run_job(
            sleep_spec(5.0, 3.0, n_maps=12, n_reduces=3)
        )
        assert r1.elapsed == r2.elapsed
        assert r1.metrics.duplicated_tasks == r2.metrics.duplicated_tasks

    def test_seed_changes_outcome(self):
        # Long enough (~15 simulated minutes) that the seed-dependent
        # outage pattern must intersect the job's execution: with a
        # 409 s mean outage, 8 volatile nodes see their first outages
        # within the first few hundred seconds.
        spec = sleep_spec(120.0, 30.0, n_maps=80, n_reduces=3)
        r1 = moon_system(small_cfg(rate=0.4, seed=1)).run_job(spec)
        r2 = moon_system(small_cfg(rate=0.4, seed=2)).run_job(spec)
        assert r1.elapsed != r2.elapsed


class TestHadoopBaseline:
    def test_all_nodes_presented_as_volatile(self):
        system = hadoop_system(small_cfg(scheduler=hadoop_scheduler_config()))
        assert len(system.cluster.dedicated) == 0
        assert len(system.cluster.volatile) == 10

    def test_reliable_machines_keep_their_availability(self):
        """The first n_dedicated nodes carry no trace (they are the same
        well-maintained boxes), Hadoop just can't tell (VI-C)."""
        system = hadoop_system(
            small_cfg(rate=0.4, scheduler=hadoop_scheduler_config())
        )
        traceless = [n for n in system.cluster.nodes if n.trace is None]
        assert len(traceless) == 2

    def test_same_seed_gives_same_traces_as_moon(self):
        """Fair comparison: node i's outage schedule is identical under
        both systems (the paper replays the same trace files)."""
        moon = moon_system(small_cfg(rate=0.4, seed=5))
        hadoop = hadoop_system(
            small_cfg(rate=0.4, seed=5, scheduler=hadoop_scheduler_config())
        )
        moon_traces = [n.trace.intervals for n in moon.cluster.volatile]
        hadoop_traces = [
            n.trace.intervals for n in hadoop.cluster.nodes if n.trace
        ]
        assert moon_traces == hadoop_traces

    def test_moon_scheduler_rejected(self):
        with pytest.raises(ConfigError):
            hadoop_system(small_cfg(scheduler=moon_scheduler_config()))

    def test_hadoop_baseline_runs(self):
        system = hadoop_system(
            small_cfg(rate=0.1, scheduler=hadoop_scheduler_config())
        )
        res = system.run_job(sleep_spec(3.0, 2.0, n_maps=8, n_reduces=2))
        assert res.succeeded
