"""Tests for the service layer's arrival-stream generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.service import (
    JobArrival,
    WorkloadClass,
    bursty_arrivals,
    default_catalog,
    diurnal_arrivals,
    poisson_arrivals,
    replay_arrivals,
    sleep_catalog,
)
from repro.workloads import sleep_spec

HOUR = 3600.0


def rng(seed=7):
    return np.random.default_rng(seed)


def _times(arrivals):
    return [a.arrival_time for a in arrivals]


class TestGenerators:
    @pytest.mark.parametrize(
        "gen",
        [
            lambda r: poisson_arrivals(r, 20.0, 2 * HOUR),
            lambda r: bursty_arrivals(r, 3.0, 5.0, 2 * HOUR),
            lambda r: diurnal_arrivals(r, 20.0, 2 * HOUR),
        ],
        ids=["poisson", "bursty", "diurnal"],
    )
    def test_sorted_within_horizon_and_deterministic(self, gen):
        a1, a2 = gen(rng()), gen(rng())
        assert a1, "stream should not be empty at this rate"
        assert _times(a1) == sorted(_times(a1))
        assert all(0 <= t < 2 * HOUR for t in _times(a1))
        assert a1 == a2  # same seed -> identical stream
        assert gen(rng(8)) != a1  # different seed -> different stream

    def test_deadlines_follow_the_class_slo(self):
        arrivals = poisson_arrivals(
            rng(), 30.0, HOUR, catalog=sleep_catalog()
        )
        slos = {c.spec.name: c.slo_seconds for c in sleep_catalog()}
        for a in arrivals:
            assert a.deadline == pytest.approx(
                a.arrival_time + slos[a.spec.name]
            )

    def test_tenant_weights_bias_the_mix(self):
        arrivals = poisson_arrivals(
            rng(),
            60.0,
            4 * HOUR,
            tenants=("big", "small"),
            tenant_weights={"big": 9.0, "small": 1.0},
        )
        big = sum(1 for a in arrivals if a.tenant == "big")
        assert big > 0.7 * len(arrivals)

    def test_bursts_cluster_in_time(self):
        arrivals = bursty_arrivals(
            rng(), 2.0, 8.0, 4 * HOUR, within_burst_gap=2.0
        )
        gaps = np.diff(_times(arrivals))
        # Most gaps are tiny (within a burst); a few are long (between).
        assert np.median(gaps) < 30.0
        assert gaps.max() > 300.0

    def test_diurnal_rate_dips_at_the_period_edges(self):
        period = 4 * HOUR
        arrivals = diurnal_arrivals(
            rng(), 60.0, period, trough_fraction=0.05, period=period
        )
        times = np.array(_times(arrivals))
        edge = np.sum((times < period / 8) | (times > 7 * period / 8))
        middle = np.sum(
            (times > 3 * period / 8) & (times < 5 * period / 8)
        )
        assert middle > 2 * edge

    def test_replay_is_verbatim_and_sorted(self):
        spec = sleep_spec(5.0, 2.0, n_maps=2, n_reduces=1)
        arrivals = replay_arrivals(
            [(60.0, "b", spec, 600.0), (10.0, "a", spec, None)]
        )
        assert _times(arrivals) == [10.0, 60.0]
        assert arrivals[0].deadline is None
        assert arrivals[1].deadline == 660.0

    def test_replay_equal_timestamps_keep_input_order(self):
        """The ordering contract trace parsers rely on: the sort is
        stable, so same-instant entries replay in input order."""
        spec = sleep_spec(5.0, 2.0, n_maps=2, n_reduces=1)
        entries = [
            (30.0, "first", spec, None),
            (30.0, "second", spec, 60.0),
            (10.0, "zero", spec, None),
            (30.0, "third", spec, None),
            (30.0, "fourth", spec, 600.0),
        ]
        arrivals = replay_arrivals(entries)
        assert [a.tenant for a in arrivals] == [
            "zero", "first", "second", "third", "fourth"
        ]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigError):
            poisson_arrivals(rng(), 0.0, HOUR)
        with pytest.raises(ConfigError):
            bursty_arrivals(rng(), 1.0, 0.5, HOUR)
        with pytest.raises(ConfigError):
            diurnal_arrivals(rng(), 10.0, HOUR, trough_fraction=0.0)
        with pytest.raises(ConfigError):
            poisson_arrivals(rng(), 10.0, HOUR, tenants=())
        with pytest.raises(ConfigError):
            poisson_arrivals(rng(), 10.0, HOUR, catalog=[])


class TestDataclasses:
    def test_arrival_validation(self):
        spec = sleep_spec(5.0, 2.0, n_maps=2, n_reduces=1)
        JobArrival(10.0, "t", spec, 20.0).validate()
        with pytest.raises(ConfigError):
            JobArrival(10.0, "t", spec, 5.0).validate()
        with pytest.raises(ConfigError):
            JobArrival(-1.0, "t", spec).validate()

    def test_workload_class_validation(self):
        spec = sleep_spec(5.0, 2.0, n_maps=2, n_reduces=1)
        with pytest.raises(ConfigError):
            WorkloadClass(spec, slo_seconds=0.0).validate()
        with pytest.raises(ConfigError):
            WorkloadClass(spec, slo_seconds=60.0, weight=0.0).validate()

    def test_default_catalog_is_valid(self):
        for cls in default_catalog() + sleep_catalog():
            cls.validate()
