"""Tests for the FIFO-queue transfer model (S3, default)."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net import FifoNetwork, Transfer
from repro.simulation import Simulation


@pytest.fixture
def net(sim):
    n = FifoNetwork(sim, disk_fraction=0.0)  # pure-NIC timing for math tests
    n.register_node(0, disk_mbps=50.0, nic_mbps=100.0)
    n.register_node(1, disk_mbps=50.0, nic_mbps=100.0)
    n.register_node(2, disk_mbps=50.0, nic_mbps=10.0)
    return n


def run_transfer(sim, net, src, dst, mb):
    done = []
    net.transfer(src, dst, mb, on_complete=lambda t: done.append(sim.now))
    sim.run()
    return done


class TestTransferTiming:
    def test_single_transfer_rate_is_bottleneck(self, sim, net):
        # 100 MB at min(100, 10) MB/s via the slow node's NIC-in.
        done = run_transfer(sim, net, 0, 2, 100.0)
        assert done == [pytest.approx(10.0)]

    def test_symmetric_fast_nodes(self, sim, net):
        done = run_transfer(sim, net, 0, 1, 50.0)
        assert done == [pytest.approx(0.5)]

    def test_queueing_serialises_on_shared_destination(self, sim, net):
        """Two senders into one NIC-in queue: second waits for first."""
        times = []
        net.transfer(0, 2, 10.0, on_complete=lambda t: times.append(sim.now))
        net.transfer(1, 2, 10.0, on_complete=lambda t: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_source_queue_also_serialises(self, sim, net):
        times = []
        net.transfer(2, 0, 10.0, on_complete=lambda t: times.append(sim.now))
        net.transfer(2, 1, 10.0, on_complete=lambda t: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_disjoint_pairs_run_in_parallel(self, sim):
        net = FifoNetwork(sim, disk_fraction=0.0)
        for i in range(4):
            net.register_node(i, disk_mbps=50.0, nic_mbps=10.0)
        times = []
        net.transfer(0, 1, 10.0, on_complete=lambda t: times.append(sim.now))
        net.transfer(2, 3, 10.0, on_complete=lambda t: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_disk_io_uses_disk_channel(self, sim, net):
        times = []
        net.disk_io(0, 100.0, on_complete=lambda t: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(2.0)]  # 100 MB / 50 MB/s

    def test_disk_fraction_charges_disk(self, sim):
        net = FifoNetwork(sim, disk_fraction=1.0)
        net.register_node(0, disk_mbps=25.0, nic_mbps=100.0)
        net.register_node(1, disk_mbps=25.0, nic_mbps=100.0)
        times = []
        net.transfer(0, 1, 100.0, on_complete=lambda t: times.append(sim.now))
        sim.run()
        # Disk is the bottleneck: 100 MB / 25 MB/s = 4 s.
        assert times == [pytest.approx(4.0)]

    def test_zero_byte_transfer_completes_immediately(self, sim, net):
        times = []
        net.transfer(0, 1, 0.0, on_complete=lambda t: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(0.0)]


class TestFailures:
    def test_transfer_to_down_node_fails_async(self, sim, net):
        net.node_down(2)
        failed = []
        net.transfer(0, 2, 10.0, on_fail=lambda t: failed.append(t.state))
        sim.run()
        assert failed == [Transfer.FAILED]

    def test_inflight_transfer_aborted_on_node_down(self, sim, net):
        outcomes = []
        net.transfer(
            0,
            2,
            100.0,  # would finish at t=10
            on_complete=lambda t: outcomes.append("done"),
            on_fail=lambda t: outcomes.append("fail"),
        )
        sim.call_at(5.0, net.node_down, 2)
        sim.run()
        assert outcomes == ["fail"]
        assert net.active_transfers() == 0

    def test_unrelated_transfer_survives_node_down(self, sim, net):
        outcomes = []
        net.transfer(0, 1, 50.0, on_complete=lambda t: outcomes.append("done"))
        sim.call_at(0.2, net.node_down, 2)
        sim.run()
        assert outcomes == ["done"]

    def test_node_up_restores_service(self, sim, net):
        net.node_down(2)
        net.node_up(2)
        times = []
        net.transfer(0, 2, 10.0, on_complete=lambda t: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.0)]

    def test_negative_size_rejected(self, sim, net):
        with pytest.raises(NetworkError):
            net.transfer(0, 1, -1.0)

    def test_unknown_node_rejected(self, sim, net):
        with pytest.raises(NetworkError):
            net.transfer(0, 99, 1.0)

    def test_duplicate_registration_rejected(self, sim, net):
        with pytest.raises(NetworkError):
            net.register_node(0, 10.0, 10.0)


class TestAccounting:
    def test_mb_served_counts_both_endpoints(self, sim, net):
        run_transfer(sim, net, 0, 1, 40.0)
        assert net.mb_served[0] == pytest.approx(40.0)
        assert net.mb_served[1] == pytest.approx(40.0)

    def test_failed_transfer_not_counted(self, sim, net):
        net.node_down(2)
        net.transfer(0, 2, 10.0)
        sim.run()
        assert net.mb_served[2] == 0.0

    def test_backlog_probe(self, sim, net):
        net.disk_io(0, 500.0)  # 10 s of disk work
        assert net.backlog_seconds(0, "disk") == pytest.approx(10.0)
        sim.run()
        assert net.backlog_seconds(0, "disk") == 0.0
