"""Write pre-planning: the next block's pipeline is allocated while the
current block streams (``DfsConfig.preplan_writes``).

The flag defaults to off — pre-planning samples cluster state and the
placement RNG earlier, which legitimately shifts placements, and the
goldens pin the plan-per-block behaviour — so the tests here cover both
modes: overlap when on, strict sequencing when off, and the abort/
failure races a stale pre-plan must still honour.
"""

from __future__ import annotations

import pytest

from repro.config import DfsConfig
from repro.dfs import DfsClient, FileKind, ReplicationFactor
from repro.dfs.placement import WritePlan

from helpers import build


def _recording_placement(nn):
    """Wrap plan_write to log (sim_now, block_id) per call."""
    calls = []
    original = nn.placement.plan_write

    def recording(file, block, client_node, exclude=()):
        calls.append((nn.sim.now, block.block_id))
        return original(file, block, client_node, exclude)

    nn.placement.plan_write = recording
    return calls


class TestPreplanOverlap:
    def test_next_block_planned_while_current_streams(self, sim):
        _, _, nn = build(sim, cfg=DfsConfig(preplan_writes=True))
        calls = _recording_placement(nn)
        done = []
        DfsClient(nn).write_file(
            "/big", 200.0, FileKind.RELIABLE, ReplicationFactor(1, 1), 3,
            on_complete=lambda: done.append(sim.now),
            on_fail=lambda e: pytest.fail(str(e)),
            block_size_mb=64.0,
        )
        sim.run()
        f = nn.file("/big")
        assert done and len(f.blocks) == 4
        assert all(len(b.replicas) == 2 for b in f.blocks)
        # One plan per block, and block k+1's plan is drawn at block k's
        # start — before block k finishes — not at its completion.
        assert len(calls) == 4
        times = [t for t, _ in calls]
        assert times[1] == times[0] == 0.0
        assert times[2] < done[0]
        # plans arrive in block order
        assert [b for _, b in calls] == [b.block_id for b in f.blocks]

    def test_sequential_planning_when_flag_off(self, sim):
        assert DfsConfig().preplan_writes is False
        _, _, nn = build(sim)
        calls = _recording_placement(nn)
        done = []
        DfsClient(nn).write_file(
            "/big", 200.0, FileKind.RELIABLE, ReplicationFactor(1, 1), 3,
            on_complete=lambda: done.append(1),
            on_fail=lambda e: pytest.fail(str(e)),
            block_size_mb=64.0,
        )
        sim.run()
        assert done == [1]
        # plan-per-block: each plan strictly after the previous block's
        # pipeline finished, so times are strictly increasing
        times = [t for t, _ in calls]
        assert len(calls) == 4
        assert all(a < b for a, b in zip(times, times[1:]))


class TestStalePlanRaces:
    def test_preplanned_target_dying_is_skipped(self, sim):
        """A target allocated at block k's start that dies before block
        k+1 streams takes the pipeline-failure path; the replica map
        never claims the dead node."""
        # v=4 over 4 volatile nodes: every volatile node is targeted, so
        # the pre-plan for block 2 necessarily names node 4.
        traces = {4: [(2.0, 2000.0)]}
        cfg = DfsConfig(preplan_writes=True, max_volatile_replicas=8)
        _, _, nn = build(sim, traces=traces, cfg=cfg)
        outcome = []
        DfsClient(nn).write_file(
            "/x", 128.0, FileKind.RELIABLE, ReplicationFactor(1, 4), 3,
            on_complete=lambda: outcome.append("done"),
            on_fail=lambda e: outcome.append(f"fail:{e}"),
            block_size_mb=64.0,
        )
        sim.run(until=100.0)
        assert outcome == ["done"]
        assert nn.counters["write_pipeline_failures"] >= 1
        for b in nn.file("/x").blocks:
            assert 4 not in b.replicas
            assert len(b.replicas) >= 2  # dedicated + at least one volatile

    def test_cancel_discards_pending_preplan(self, sim):
        _, _, nn = build(sim, cfg=DfsConfig(preplan_writes=True))
        calls = _recording_placement(nn)
        fired = []
        op = DfsClient(nn).write_file(
            "/x", 200.0, FileKind.RELIABLE, ReplicationFactor(1, 1), 3,
            on_complete=lambda: fired.append("done"),
            on_fail=lambda e: fired.append("fail"),
            block_size_mb=64.0,
        )
        # blocks 1 and 2 were planned at submit time; cancelling now
        # must stop the state machine before block 2 is ever used
        assert len(calls) == 2
        op.cancel()
        assert op._next_plan is None
        sim.run()
        assert fired == []
        assert len(calls) == 2

    def test_empty_preplan_replanned_at_use(self, sim):
        """A pre-plan drawn when the cluster had no room is dropped and
        the block is re-planned when it is actually needed."""
        _, _, nn = build(sim, cfg=DfsConfig(preplan_writes=True))
        original = nn.placement.plan_write
        calls = []

        def starving(file, block, client_node, exclude=()):
            calls.append(block.block_id)
            if len(calls) == 2:  # the first pre-plan comes back empty
                return WritePlan()
            return original(file, block, client_node, exclude)

        nn.placement.plan_write = starving
        done = []
        DfsClient(nn).write_file(
            "/x", 128.0, FileKind.RELIABLE, ReplicationFactor(1, 1), 3,
            on_complete=lambda: done.append(1),
            on_fail=lambda e: pytest.fail(str(e)),
            block_size_mb=64.0,
        )
        sim.run()
        assert done == [1]
        f = nn.file("/x")
        assert all(len(b.replicas) == 2 for b in f.blocks)
        # block 2 was planned twice: the starved pre-plan + the re-plan
        assert calls.count(f.blocks[1].block_id) == 2
