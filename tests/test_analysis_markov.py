"""Tests for the two-state Markov availability model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import TwoStateModel, k_of_n_down_pmf, prob_at_least_k_down
from repro.config import TraceConfig
from repro.errors import TraceError
from repro.traces import generate_trace


class TestTwoStateModel:
    def test_mean_uptime_from_rate(self):
        """p = down/(up+down): at p=0.4, down=409 -> up=613.5."""
        m = TwoStateModel(0.4, 409.0)
        assert m.mean_uptime == pytest.approx(409.0 * 0.6 / 0.4)

    def test_zero_p_never_fails(self):
        m = TwoStateModel(0.0, 409.0)
        assert m.mean_uptime == float("inf")
        assert m.failure_rate == 0.0
        assert m.prob_survives(1e9) == 1.0
        assert m.availability_at(100.0) == 1.0

    def test_transient_availability_converges_to_steady_state(self):
        m = TwoStateModel(0.4, 409.0)
        assert m.availability_at(0.0, up_at_zero=True) == pytest.approx(1.0)
        assert m.availability_at(0.0, up_at_zero=False) == pytest.approx(0.0)
        late = m.availability_at(1e6)
        assert late == pytest.approx(0.6, abs=1e-9)

    def test_transient_monotone_from_each_side(self):
        m = TwoStateModel(0.3, 400.0)
        ts = np.linspace(0, 5000, 50)
        from_up = [m.availability_at(t, True) for t in ts]
        from_down = [m.availability_at(t, False) for t in ts]
        assert all(a >= b - 1e-12 for a, b in zip(from_up, from_up[1:]))
        assert all(a <= b + 1e-12 for a, b in zip(from_down, from_down[1:]))

    def test_survival_decreases_with_duration(self):
        m = TwoStateModel(0.4, 409.0)
        assert m.prob_survives(60.0) > m.prob_survives(600.0)

    def test_long_tasks_rarely_survive(self):
        """The paper's motivation for dedicated placement of long tasks:
        a one-hour task at p=0.4 almost never runs uninterrupted."""
        m = TwoStateModel(0.4, 409.0)
        assert m.prob_survives(3600.0) < 0.01

    def test_expected_interruptions_linear(self):
        m = TwoStateModel(0.4, 409.0)
        one = m.expected_interruptions(100.0)
        assert m.expected_interruptions(200.0) == pytest.approx(2 * one)

    def test_validation(self):
        with pytest.raises(TraceError):
            TwoStateModel(1.0, 409.0)
        with pytest.raises(TraceError):
            TwoStateModel(0.4, 0.0)
        with pytest.raises(TraceError):
            TwoStateModel(0.4, 409.0).availability_at(-1.0)
        with pytest.raises(TraceError):
            TwoStateModel(0.4, 409.0).prob_survives(-1.0)


class TestKOfN:
    def test_pmf_sums_to_one(self):
        pmf = k_of_n_down_pmf(60, 0.4)
        assert pmf.sum() == pytest.approx(1.0)
        assert len(pmf) == 61

    def test_mode_near_np(self):
        pmf = k_of_n_down_pmf(60, 0.4)
        assert abs(int(pmf.argmax()) - 24) <= 1

    def test_at_least_zero_is_certain(self):
        assert prob_at_least_k_down(60, 0, 0.4) == 1.0

    def test_ninety_percent_burst_is_astronomical_under_independence(self):
        """Fig. 1 shows ~90% simultaneous unavailability; under the
        independent model that is a < 1e-12 event for 60 nodes at
        p=0.4 — the quantitative case for the correlated generator."""
        assert prob_at_least_k_down(60, 54, 0.4) < 1e-12

    def test_tail_monotone_in_k(self):
        probs = [prob_at_least_k_down(60, k, 0.4) for k in range(0, 61, 5)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_validation(self):
        with pytest.raises(TraceError):
            k_of_n_down_pmf(-1, 0.4)
        with pytest.raises(TraceError):
            k_of_n_down_pmf(5, 1.5)
        with pytest.raises(TraceError):
            prob_at_least_k_down(5, -1, 0.4)

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=200),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_pmf_valid(self, n, p):
        pmf = k_of_n_down_pmf(n, p)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)
        assert (pmf >= 0).all()


class TestModelVsTraces:
    def test_steady_state_matches_generated_traces(self):
        """The generator hits the configured rate exactly; the Markov
        steady state is that same number — cross-check the two."""
        cfg = TraceConfig(unavailability_rate=0.4)
        rng = np.random.default_rng(3)
        rates = [generate_trace(cfg, rng).unavailability_rate() for _ in range(20)]
        model = TwoStateModel(0.4, cfg.mean_outage)
        steady_unavail = 1.0 - model.availability_at(1e9)
        assert np.mean(rates) == pytest.approx(steady_unavail, abs=0.01)

    def test_interruption_count_matches_trace_outage_count(self):
        """Expected interruptions over the whole window ~= number of
        outages the generator actually places."""
        cfg = TraceConfig(unavailability_rate=0.4)
        rng = np.random.default_rng(9)
        model = TwoStateModel(0.4, cfg.mean_outage)
        # Uptime during the trace is (1-p)*duration; interruptions occur
        # at failure_rate over uptime, which is exactly n_outages.
        expected = model.failure_rate * (1 - 0.4) * cfg.duration
        counts = [len(generate_trace(cfg, rng)) for _ in range(30)]
        assert np.mean(counts) == pytest.approx(expected, rel=0.15)
