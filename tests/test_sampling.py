"""Vectorised sampling is byte-identical to the scalar draws it
replaces.

Three contracts, each pinned with hypothesis:

* :class:`~repro.simulation.StreamSampler` — block-prefetched scalar
  draws equal direct ``numpy.random.Generator`` scalar calls in the
  same order on an identically seeded stream, per distribution family,
  for every block size;
* :func:`~repro.service.poisson_arrivals_vectorised` — the batched
  two-stream arrival builder equals its scalar reference loop;
* :func:`~repro.workloads.random_specs` — the field-major batch spec
  generator equals its scalar oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.service import (
    poisson_arrivals_reference,
    poisson_arrivals_vectorised,
    sleep_catalog,
)
from repro.simulation import StreamSampler
from repro.workloads import random_specs
from repro.workloads.generator import _random_specs_scalar


def _pair(seed):
    return (
        np.random.default_rng([seed, 1]),
        np.random.default_rng([seed, 1]),
    )


class TestStreamSampler:
    @given(
        seed=st.integers(0, 2**31 - 1),
        block=st.integers(1, 64),
        scales=st.lists(
            st.floats(1e-3, 1e4, allow_nan=False), min_size=1, max_size=150
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_exponential_matches_generator(self, seed, block, scales):
        g_direct, g_sampled = _pair(seed)
        sampler = StreamSampler(g_sampled, block=block)
        got = [sampler.exponential(s) for s in scales]
        want = [float(g_direct.exponential(s)) for s in scales]
        assert got == want

    @given(
        seed=st.integers(0, 2**31 - 1),
        block=st.integers(1, 64),
        params=st.lists(
            st.tuples(st.floats(-1e3, 1e3), st.floats(1e-3, 1e3)),
            min_size=1,
            max_size=150,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_normal_matches_generator(self, seed, block, params):
        g_direct, g_sampled = _pair(seed)
        sampler = StreamSampler(g_sampled, block=block)
        got = [sampler.normal(m, s) for m, s in params]
        want = [float(g_direct.normal(m, s)) for m, s in params]
        assert got == want

    @given(
        seed=st.integers(0, 2**31 - 1),
        block=st.integers(1, 64),
        n=st.integers(1, 150),
    )
    @settings(max_examples=50, deadline=None)
    def test_uniform_and_random_share_the_double_stream(self, seed, block, n):
        g_direct, g_sampled = _pair(seed)
        sampler = StreamSampler(g_sampled, block=block)
        got, want = [], []
        for i in range(n):
            if i % 2:
                got.append(sampler.uniform(-5.0, 12.5))
                want.append(float(g_direct.uniform(-5.0, 12.5)))
            else:
                got.append(sampler.random())
                want.append(float(g_direct.random()))
        assert got == want

    def test_family_is_locked(self):
        sampler = StreamSampler(np.random.default_rng(0), block=8)
        sampler.exponential(2.0)
        with pytest.raises(SimulationError):
            sampler.normal()
        with pytest.raises(SimulationError):
            sampler.uniform()
        sampler.exponential(3.0)  # same family keeps working

    def test_block_must_be_positive(self):
        with pytest.raises(SimulationError):
            StreamSampler(np.random.default_rng(0), block=0)


class TestVectorisedArrivals:
    @given(
        seed=st.integers(0, 2**31 - 1),
        rate=st.floats(1.0, 400.0),
        horizon=st.floats(600.0, 40_000.0),
        block=st.integers(1, 64),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_scalar_reference(self, seed, rate, horizon, block):
        catalog = sleep_catalog()
        gaps_v = np.random.default_rng([seed, 2])
        picks_v = np.random.default_rng([seed, 3])
        gaps_s = np.random.default_rng([seed, 2])
        picks_s = np.random.default_rng([seed, 3])
        vec = poisson_arrivals_vectorised(
            gaps_v, picks_v, rate, horizon, catalog=catalog, block=block
        )
        ref = poisson_arrivals_reference(
            gaps_s, picks_s, rate, horizon, catalog=catalog
        )
        assert vec == ref

    def test_mix_and_deadlines_sane(self):
        catalog = sleep_catalog()
        arrivals = poisson_arrivals_vectorised(
            np.random.default_rng(1),
            np.random.default_rng(2),
            rate_per_hour=120.0,
            horizon=6 * 3600.0,
            catalog=catalog,
        )
        assert arrivals
        assert all(
            a.arrival_time < b.arrival_time
            for a, b in zip(arrivals, arrivals[1:])
        )
        names = {a.spec.name for a in arrivals}
        assert names == {"sleep-interactive", "sleep-batch"}
        for a in arrivals:
            assert a.deadline is not None and a.deadline > a.arrival_time


class TestRandomSpecsBatch:
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(0, 60))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_oracle(self, seed, n):
        g_vec = np.random.default_rng([seed, 4])
        g_ref = np.random.default_rng([seed, 4])
        vec = random_specs(g_vec, n)
        ref = _random_specs_scalar(g_ref, n)
        assert vec == ref
        assert (
            g_vec.bit_generator.state == g_ref.bit_generator.state
        ), "batch and scalar paths must consume the stream identically"
