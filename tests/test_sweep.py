"""Parallel sweep runner (engine scale-out PR).

The contract: the merged report is byte-stable — identical JSON at any
``--procs`` — cells land in grid order regardless of completion order,
and bad grids fail loudly before any cell runs.
"""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.errors import ConfigError
from repro.service import SweepSpec, run_sweep, sweep_summary_rows

TINY = SweepSpec(
    policies=("fifo", "sjf"),
    scales=(1.0,),
    seeds=(1, 2),
    jobs_per_hour=12.0,
    hours=0.25,
    n_volatile=6,
    n_dedicated=2,
)


class TestByteStability:
    def test_procs_1_equals_procs_2(self):
        a = run_sweep(TINY, procs=1).to_json()
        b = run_sweep(TINY, procs=2).to_json()
        assert a == b

    def test_cells_in_grid_order(self):
        result = run_sweep(TINY, procs=2)
        got = [(c["policy"], c["scale"], c["seed"]) for c in result.cells]
        want = [(c.policy, c.scale, c.seed) for c in TINY.cells()]
        assert got == want

    def test_report_carries_no_wall_clock(self):
        # Nothing in the canonical bytes may depend on how fast the
        # host ran: a re-run must compare equal with cmp.
        text = run_sweep(TINY, procs=1).to_json()
        payload = json.loads(text)
        assert payload["schema_version"] == 1
        flat = json.dumps(payload, sort_keys=True)
        for banned in ("wall", "elapsed_real", "hostname", "pid"):
            assert banned not in flat

    def test_summary_rows_cover_every_cell(self):
        result = run_sweep(TINY, procs=1)
        rows = sweep_summary_rows(result)
        assert len(rows) == len(result.cells)
        assert rows[0][0] == "fifo" and rows[-1][0] == "sjf"


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(ConfigError, match="policy"):
            SweepSpec(policies=("nope",)).validate()

    def test_duplicate_seeds(self):
        with pytest.raises(ConfigError, match="duplicate"):
            SweepSpec(seeds=(1, 1)).validate()

    def test_bad_scale(self):
        with pytest.raises(ConfigError, match="positive"):
            SweepSpec(scales=(0.0,)).validate()

    def test_procs_must_be_positive(self):
        with pytest.raises(ConfigError, match="procs"):
            run_sweep(TINY, procs=0)


class TestCli:
    def test_sweep_writes_canonical_json(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        rc = main(
            [
                "sweep",
                "--policies", "fifo",
                "--scales", "1",
                "--seeds", "3",
                "--hours", "0.25",
                "--volatile", "6",
                "--json", str(out),
            ]
        )
        assert rc == 0
        assert "sweep - 1 cells" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert [c["seed"] for c in payload["cells"]] == [3]

    def test_bad_grid_is_exit_2(self, tmp_path):
        rc = main(["sweep", "--policies", "bogus", "--seeds", "1"])
        assert rc == 2
