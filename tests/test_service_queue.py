"""Tests for the job queue: ordering policies, admission, quotas."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.service import (
    JobArrival,
    JobQueue,
    QueueContext,
    make_cost_estimator,
    make_queue_policy,
)
from repro.workloads import sleep_spec


def spec(map_seconds=10.0, name="sleep"):
    return sleep_spec(map_seconds, 5.0, n_maps=4, n_reduces=1).with_(
        name=name
    )


def arrival(t=0.0, tenant="a", deadline=None, map_seconds=10.0, name="sleep"):
    return JobArrival(t, tenant, spec(map_seconds, name), deadline)


def queue(policy="fifo", **kwargs):
    return JobQueue(make_queue_policy(policy), **kwargs)


class TestOrdering:
    def test_fifo_pops_in_arrival_order(self):
        q = queue("fifo")
        for i in range(3):
            q.offer(arrival(t=float(i), tenant=f"t{i}"), now=float(i))
        assert [q.select().arrival.tenant for _ in range(3)] == [
            "t0", "t1", "t2",
        ]

    def test_sjf_pops_cheapest_estimate_first(self):
        est = make_cost_estimator(10, 0.3)
        q = JobQueue(make_queue_policy("sjf"), estimator=est)
        q.offer(arrival(map_seconds=300.0, name="slow"), now=0.0)
        q.offer(arrival(map_seconds=5.0, name="fast"), now=0.0)
        assert q.select().arrival.spec.name == "fast"
        assert q.select().arrival.spec.name == "slow"

    def test_edf_pops_earliest_deadline_deadline_free_last(self):
        q = queue("edf")
        q.offer(arrival(deadline=None), now=0.0)
        q.offer(arrival(deadline=900.0), now=0.0)
        q.offer(arrival(deadline=300.0), now=0.0)
        deadlines = [q.select().deadline for _ in range(3)]
        assert deadlines == [300.0, 900.0, None]

    def test_fair_share_alternates_tenants(self):
        est = make_cost_estimator(10, 0.0)
        q = JobQueue(make_queue_policy("fair"), estimator=est)
        for i in range(4):
            q.offer(arrival(t=float(i), tenant="greedy"), now=0.0)
        q.offer(arrival(t=4.0, tenant="meek"), now=0.0)
        first, second = q.select(), q.select()
        # greedy arrived first, but once it has accumulated usage the
        # untouched tenant is preferred.
        assert first.tenant == "greedy"
        assert second.tenant == "meek"

    def test_fair_share_respects_weights(self):
        est = make_cost_estimator(10, 0.0)
        policy = make_queue_policy("fair", tenant_weights={"heavy": 4.0})
        q = JobQueue(policy, estimator=est)
        for i in range(6):
            q.offer(arrival(t=float(i), tenant="heavy"), now=0.0)
            q.offer(arrival(t=float(i), tenant="light"), now=0.0)
        picks = [q.select().tenant for _ in range(5)]
        # Weight 4 vs 1: heavy gets ~4 of the first 5 admissions.
        assert picks.count("heavy") >= 3

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            make_queue_policy("priority")


class TestAdmission:
    def test_bounded_queue_rejects_overflow(self):
        q = queue("fifo", max_queue_depth=2)
        assert q.offer(arrival(), now=0.0) is not None
        assert q.offer(arrival(), now=0.0) is not None
        assert q.offer(arrival(), now=0.0) is None
        assert q.rejected == 1
        assert len(q) == 2

    def test_tenant_quota_skips_saturated_tenants(self):
        q = queue("fifo", tenant_quota=1)
        q.offer(arrival(tenant="a"), now=0.0)
        q.offer(arrival(tenant="b"), now=0.0)
        ctx = QueueContext(in_flight_by_tenant={"a": 1})
        picked = q.select(ctx)
        assert picked.tenant == "b"
        # Nothing admissible: only tenant-a remains and it is at quota.
        q.offer(arrival(tenant="a"), now=1.0)
        assert q.select(ctx) is None

    def test_select_on_empty_queue(self):
        assert queue().select() is None

    def test_cost_policies_require_an_estimator(self):
        # Without costs, sjf/fair would silently degrade to FIFO.
        for name in ("sjf", "fair"):
            with pytest.raises(ConfigError):
                JobQueue(make_queue_policy(name))

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigError):
            queue("fifo", max_queue_depth=0)
        with pytest.raises(ConfigError):
            queue("fifo", tenant_quota=0)
        with pytest.raises(ConfigError):
            make_cost_estimator(0, 0.3)


class TestAdmissionPrices:
    """Saturation sheds cheapest-to-miss work first (ROADMAP item)."""

    def _full_queue(self, **kwargs):
        q = queue("edf", max_queue_depth=3, admission_prices=True,
                  **kwargs)
        # no deadline (price 0) < 2h SLO < 30min SLO.
        q.offer(arrival(t=0.0, deadline=None, name="free"), now=0.0)
        q.offer(arrival(t=1.0, deadline=1.0 + 7200.0, name="loose"),
                now=1.0)
        q.offer(arrival(t=2.0, deadline=2.0 + 1800.0, name="mid"), now=2.0)
        return q

    def test_cheapest_class_evicted_first(self):
        evicted = []
        q = self._full_queue(on_evict=lambda qj: evicted.append(qj))
        # A tight arrival outprices the deadline-free entry.
        tight = arrival(t=3.0, deadline=3.0 + 600.0, name="tight")
        assert q.offer(tight, now=3.0) is not None
        assert [e.arrival.spec.name for e in evicted] == ["free"]
        assert q.rejected == 1 and q.evicted == 1
        assert len(q) == 3

    def test_equal_or_cheaper_arrival_is_rejected(self):
        evicted = []
        q = self._full_queue(on_evict=lambda qj: evicted.append(qj))
        # Same price as the queued deadline-free job: the arrival —
        # newest of all — loses the tie; nothing queued is disturbed.
        assert q.offer(arrival(t=3.0, deadline=None), now=3.0) is None
        assert evicted == []
        assert q.rejected == 1 and q.evicted == 0

    def test_rejection_order_is_pinned(self):
        """The full saturation cascade: classes go cheapest-first, and
        within a class newest-first — a deterministic order pinned
        here because it must be identical across processes (the
        comparison-table byte-stability bar)."""
        def flood(q):
            names = ["free-0", "loose-0", "loose-1"]
            q.offer(arrival(t=0.0, deadline=None, name=names[0]), now=0.0)
            q.offer(arrival(t=1.0, deadline=1.0 + 7200.0, name=names[1]),
                    now=1.0)
            q.offer(arrival(t=2.0, deadline=2.0 + 7200.0, name=names[2]),
                    now=2.0)
            shed = []
            q._on_evict = lambda qj: shed.append(qj.arrival.spec.name)
            for i in range(3):
                t = 10.0 + i
                q.offer(
                    arrival(t=t, deadline=t + 600.0, name=f"tight-{i}"),
                    now=t,
                )
            return shed, [p.arrival.spec.name for p in q.pending]

        shed1, left1 = flood(queue("edf", max_queue_depth=3,
                                   admission_prices=True))
        shed2, left2 = flood(queue("edf", max_queue_depth=3,
                                   admission_prices=True))
        # Cheapest class first (deadline-free), then the loose class
        # newest-first; the tight arrivals all stay.
        assert shed1 == ["free-0", "loose-1", "loose-0"]
        assert left1 == ["tight-0", "tight-1", "tight-2"]
        assert (shed1, left1) == (shed2, left2)

    def test_flag_off_keeps_classic_arrival_order_rejection(self):
        q = queue("edf", max_queue_depth=1)
        q.offer(arrival(t=0.0, deadline=None), now=0.0)
        tight = arrival(t=1.0, deadline=1.0 + 60.0)
        assert q.offer(tight, now=1.0) is None
        assert q.evicted == 0 and len(q) == 1

    def test_admission_price_function(self):
        from repro.service import admission_price

        assert admission_price(arrival(deadline=None)) == 0.0
        tight = admission_price(arrival(t=10.0, deadline=10.0 + 600.0))
        loose = admission_price(arrival(t=10.0, deadline=10.0 + 5400.0))
        assert tight == pytest.approx(9 * loose)
        assert tight > loose > 0.0


class TestCostEstimator:
    def test_monotone_in_job_size(self):
        est = make_cost_estimator(10, 0.3)
        assert est(spec(map_seconds=300.0)) > est(spec(map_seconds=5.0))

    def test_memoised_per_spec(self):
        est = make_cost_estimator(10, 0.3)
        s = spec()
        assert est(s) == est(s)
