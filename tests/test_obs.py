"""Unit tests for the flight recorder (repro.obs).

Covers the tracer's Chrome-trace emission and text timeline, the
metrics registry (counters, gauges, histograms, the CounterBag
facade), order-independent histogram merging, the dispatch profiler,
and the engine's profiled-run determinism.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.obs import (
    ATTEMPT_LANE_BASE,
    CATEGORY_LANES,
    NULL_TRACER,
    CounterBag,
    DispatchProfiler,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Observability,
    ObsConfig,
    Tracer,
    current_default,
    default_observability,
)
from repro.simulation import Simulation


class TestTracer:
    def test_span_and_instant_round_trip(self):
        tr = Tracer()
        tr.instant("job.submit", "job", 1.5, job="j1", maps=4)
        tr.span("j1-m0", "attempt", 2.0, 5.0,
                tid=ATTEMPT_LANE_BASE + 3, node=3)
        doc = tr.to_chrome()
        rows = doc["traceEvents"]
        # Metadata rows lead; then the recorded events in order.
        meta = [r for r in rows if r["ph"] == "M"]
        assert any(r["name"] == "process_name" for r in meta)
        inst = next(r for r in rows if r["ph"] == "i")
        assert inst["name"] == "job.submit"
        assert inst["ts"] == pytest.approx(1.5e6)
        assert inst["tid"] == CATEGORY_LANES["job"]
        assert inst["args"] == {"job": "j1", "maps": 4}
        span = next(r for r in rows if r["ph"] == "X")
        assert span["dur"] == pytest.approx(3.0e6)
        assert span["tid"] == ATTEMPT_LANE_BASE + 3

    def test_write_chrome_is_valid_json(self, tmp_path):
        tr = Tracer()
        tr.instant("a", "queue", 0.0)
        path = tmp_path / "t.json"
        tr.write_chrome(str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_write_is_byte_deterministic(self, tmp_path):
        paths = []
        for i in range(2):
            tr = Tracer()
            tr.span("s", "job", 0.0, 2.0, workload="sort")
            tr.instant("i", "sched", 1.0, node=7)
            p = tmp_path / f"t{i}.json"
            tr.write_chrome(str(p))
            paths.append(p.read_bytes())
        assert paths[0] == paths[1]

    def test_timeline_sorted_and_stable(self):
        tr = Tracer()
        tr.instant("late", "job", 5.0)
        tr.instant("early", "job", 1.0, b=2, a=1)
        lines = tr.timeline().splitlines()
        assert "early" in lines[0] and "late" in lines[1]
        # Args render sorted by key.
        assert lines[0].index("a=1") < lines[0].index("b=2")

    def test_event_cap_counts_drops(self):
        tr = Tracer(max_events=2)
        for i in range(5):
            tr.instant("e", "job", float(i))
        assert len(tr.events) == 2
        assert tr.dropped == 3

    def test_null_tracer_is_inert(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled
        NULL_TRACER.instant("x", "job", 0.0)
        NULL_TRACER.span("x", "job", 0.0, 1.0)


class TestMetrics:
    def test_counter_gauge_create_on_first_use(self):
        reg = MetricsRegistry()
        c = reg.counter("a/b")
        c.inc()
        c.inc(2)
        assert reg.counter("a/b") is c and c.value == 3
        g = reg.gauge("depth")
        g.set(7)
        assert reg.gauge("depth").value == 7

    def test_histogram_observe_and_dict(self):
        reg = MetricsRegistry()
        h = reg.histogram("wait")
        for v in (0.05, 1.0, 30.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 3
        assert d["min"] == 0.05 and d["max"] == 30.0
        assert d["sum"] == pytest.approx(31.05)

    def test_histogram_merge_is_order_independent(self):
        values = [0.01, 0.3, 0.3, 5.0, 77.7, 1e-9, 3600.0, 0.1]
        a, b, c = Histogram("h"), Histogram("h"), Histogram("h")
        for v in values[:3]:
            a.observe(v)
        for v in values[3:6]:
            b.observe(v)
        for v in values[6:]:
            c.observe(v)
        abc = a.merge(b).merge(c)
        cba = c.merge(b).merge(a)
        assert abc.to_dict() == cba.to_dict()
        assert abc.count == len(values)
        assert abc.total == pytest.approx(sum(values))

    def test_histogram_merge_rejects_bounds_mismatch(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 3.0))
        with pytest.raises(ReproError):
            a.merge(b)

    def test_registry_to_dict_sorted_and_json_safe(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc(5)
        reg.histogram("h").observe(2.0)
        d = reg.to_dict()
        assert list(d["counters"]) == ["a", "z"]
        path = tmp_path / "m.json"
        reg.write_json(str(path))
        assert json.loads(path.read_text()) == d


class TestCounterBag:
    def test_counter_semantics(self):
        reg = MetricsRegistry()
        bag = CounterBag(reg, "dfs/")
        # Missing-key read yields 0 and does NOT create the counter.
        assert bag["nothing"] == 0
        assert "nothing" not in bag
        bag["writes"] += 1
        bag["writes"] += 2
        assert bag["writes"] == 3
        assert dict(bag) == {"writes": 3}
        assert reg.counter("dfs/writes").value == 3

    def test_touched_keys_only(self):
        reg = MetricsRegistry()
        reg.counter("net/elsewhere").inc()
        bag = CounterBag(reg, "net/")
        bag["flows"] = 2
        assert set(bag.keys()) == {"flows"}
        assert len(bag) == 1


class TestProfiler:
    def test_rows_and_table(self):
        prof = DispatchProfiler()
        for _ in range(3):
            prof.note("Heartbeat._tick", 0.002)
        prof.note("Transfer.done", 0.010)
        rows = prof.rows(top=10)
        assert rows[0]["event"] == "Transfer.done"  # largest total first
        assert prof.total_events == 4
        text = prof.table(top=10)
        assert "Heartbeat._tick" in text and "TOTAL" in text

    def test_profiled_run_is_deterministic(self):
        def run(obs):
            sim = Simulation(seed=11, obs=obs)
            order = []
            for t in (3.0, 1.0, 2.0):
                sim.call_at(t, order.append, t)
            sim.run()
            return order, sim.executed_events

        plain = run(Observability())
        profiled = run(Observability(ObsConfig(profile=True)))
        assert plain[0] == profiled[0] == [1.0, 2.0, 3.0]
        assert plain[1] == profiled[1]


class TestObservabilityWiring:
    def test_default_off_uses_null_tracer(self):
        obs = Observability()
        assert not obs.tracer.enabled
        assert obs.profiler is None

    def test_trace_out_arms_the_tracer(self, tmp_path):
        obs = Observability(
            ObsConfig(trace_out=str(tmp_path / "t.json"),
                      metrics_out=str(tmp_path / "m.json"))
        )
        assert obs.tracer.enabled
        obs.metrics.counter("x").inc()
        written = obs.export()
        assert len(written) == 2
        for p in written:
            json.loads(open(p, encoding="utf-8").read())

    def test_default_observability_scoped(self):
        assert current_default() is None
        obs = Observability()
        with default_observability(obs):
            assert current_default() is obs
            sim = Simulation(seed=1)
            assert sim.obs is obs
        assert current_default() is None
