"""Tests for the default Hadoop speculative policy + LATE baseline."""

from __future__ import annotations

import pytest

from repro.config import SchedulerConfig, hadoop_scheduler_config
from repro.dfs import ReplicationFactor
from repro.mapreduce import JobState

from helpers import build_mr
from test_mapreduce_basic import tiny_job


def volatile_only_job(**kw):
    defaults = dict(
        input_rf=ReplicationFactor(0, 2),
        intermediate_rf=ReplicationFactor(0, 1),
        output_rf=ReplicationFactor(0, 2),
    )
    defaults.update(kw)
    return tiny_job(**defaults)


class TestHadoopPolicy:
    def test_no_speculation_while_pending_work_exists(self, sim):
        """II-C: backups are issued only once all tasks are scheduled."""
        cfg = hadoop_scheduler_config()
        _, _, nn, jt = build_mr(sim, scheduler_cfg=cfg, n_volatile=2,
                                n_dedicated=0)
        job = jt.submit(volatile_only_job(n_maps=12, n_reduces=0,
                                          map_cpu_seconds=90.0))
        sim.run(until=70.0)
        # 4 slots, 12 maps: pending work remains, so zero speculation
        # even though early tasks have run > 1 minute.
        assert job.counters["speculative_launched"] == 0

    def test_straggler_needs_progress_gap(self, sim):
        """Equal progress everywhere -> no stragglers -> no backups."""
        cfg = hadoop_scheduler_config()
        _, _, nn, jt = build_mr(sim, scheduler_cfg=cfg, n_volatile=4,
                                n_dedicated=0)
        job = jt.submit(volatile_only_job(n_maps=8, n_reduces=0,
                                          map_cpu_seconds=120.0))
        sim.run(until=100.0)
        assert job.counters["speculative_launched"] == 0

    def test_speculates_on_stalled_task(self, sim):
        """A node that suspends (undetected) stalls its task; once the
        progress gap opens, Hadoop launches a backup copy."""
        traces = {2: [(10.0, 4000.0)]}
        cfg = hadoop_scheduler_config(tracker_expiry_interval=3000.0)
        _, _, nn, jt = build_mr(sim, scheduler_cfg=cfg, n_volatile=5,
                                n_dedicated=0, traces=traces)
        job = jt.submit(volatile_only_job(n_maps=10, n_reduces=0,
                                          map_cpu_seconds=60.0))
        sim.run(until=1000.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED
        assert job.counters["speculative_launched"] >= 1
        # Per-task cap: never more than 1 backup (2 attempts) at a time.
        for t in job.maps:
            overlap = 0
            events = []
            for a in t.attempts:
                events.append((a.started_at, 1))
                if a.finished_at is not None:
                    events.append((a.finished_at, -1))
            events.sort()
            live = 0
            for _, d in events:
                live += d
                overlap = max(overlap, live)
            assert overlap <= 2

    def test_job_finishes_despite_dead_node(self, sim):
        traces = {2: [(5.0, 90000.0)]}
        cfg = hadoop_scheduler_config(tracker_expiry_interval=60.0)
        _, _, nn, jt = build_mr(sim, scheduler_cfg=cfg, n_volatile=4,
                                n_dedicated=0, traces=traces)
        job = jt.submit(volatile_only_job(n_maps=8, n_reduces=2))
        sim.run(until=8 * 3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED


class TestLatePolicy:
    def _late_cfg(self):
        return SchedulerConfig(
            kind="late",
            tracker_expiry_interval=600.0,
            hybrid_aware=False,
        )

    def test_late_completes_stable_job(self, sim):
        _, _, nn, jt = build_mr(sim, scheduler_cfg=self._late_cfg(),
                                n_volatile=4, n_dedicated=0)
        job = jt.submit(volatile_only_job())
        sim.run(until=3600.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED

    def test_late_speculates_on_longest_eta(self, sim):
        traces = {2: [(10.0, 4000.0)]}
        _, _, nn, jt = build_mr(sim, scheduler_cfg=self._late_cfg(),
                                n_volatile=5, n_dedicated=0, traces=traces)
        job = jt.submit(volatile_only_job(n_maps=10, n_reduces=0,
                                          map_cpu_seconds=60.0))
        sim.run(until=2000.0, stop_when=lambda: job.finished)
        assert job.state is JobState.SUCCEEDED
        assert job.counters["speculative_launched"] >= 1
        # The stalled node's task must be among the speculated ones.
        stalled = [
            t for t in job.maps
            if 2 in {a.node_id for a in t.attempts}
        ]
        assert any(len(t.attempts) > 1 for t in stalled)
