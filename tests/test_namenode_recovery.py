"""Crash-safe NameNode: the crash-at-any-event recovery fuzz suite.

The contract under test: kill the NameNode at *any* moment of a churny
workload — arbitrary journal offset, unsynced tail lost — and the
failed-over master, after replaying checkpoint + durable log and
collecting datanode block reports, must hold a namespace, block map
and pending-replication set semantically identical to a NameNode that
never crashed.  On top of that, the journal itself must be a proper
replay log: applying any durable prefix twice is the same as applying
it once (block reports and crash/recover loops re-apply records
freely).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import DfsConfig, JournalConfig
from repro.dfs import (
    DfsClient,
    FileKind,
    JournalRecord,
    NameNode,
    NodeState,
    ReplicationFactor,
)
from repro.simulation import Simulation

from helpers import build

RF11 = ReplicationFactor(1, 1)
RF12 = ReplicationFactor(1, 2)
RF02 = ReplicationFactor(0, 2)

N_DEDICATED = 2
N_VOLATILE = 6


def journal_cfg(checkpoint_interval=120.0, fsync_interval=8, crash_at=None):
    return DfsConfig(
        journal=JournalConfig(
            enabled=True,
            checkpoint_interval=checkpoint_interval,
            fsync_interval=fsync_interval,
            crash_at=crash_at,
        )
    )


def churn_system(sim, cfg, writes, deletes=(), converts=(), traces=None):
    """A DFS under churn: scheduled writes, deletes, conversions and
    (via ``traces``) volatile-node outages — every journal record type
    short of membership changes gets exercised."""
    cluster, net, nn = build(
        sim,
        n_dedicated=N_DEDICATED,
        n_volatile=N_VOLATILE,
        traces=traces,
        cfg=cfg,
    )
    client = DfsClient(nn)

    def write(path, kind, rf, size):
        client.write_file(
            path, size, kind, rf,
            client_node=N_DEDICATED,  # first volatile node
            on_complete=lambda: None,
            on_fail=lambda e: None,  # shortfalls are the point
        )

    for t, path, kind, rf, size in writes:
        sim.call_at(t, write, path, kind, rf, size)
    for t, path in deletes:
        sim.call_at(
            t, lambda p=path: nn.delete_file(p) if nn.exists(p) else None
        )
    for t, path in converts:
        sim.call_at(
            t,
            lambda p=path: (
                nn.convert_to_reliable(p) if nn.exists(p) else None
            ),
        )
    return cluster, net, nn


def reconcile_synchronously(nn: NameNode) -> None:
    """Deliver every owed block report immediately (zero-latency
    datanodes).  DEAD nodes stay silent — exactly as in real time,
    where they report on rejoin."""
    for nid in list(nn._report_owed):
        if nn._states.get(nid) is not NodeState.DEAD:
            nn.deliver_block_report(nid)


def assert_accounting_invariants(nn: NameNode) -> None:
    known = set(nn._infos)
    for block in nn._blocks.values():
        assert block.replicas <= known
        assert block.dedicated_replicas <= block.replicas
    for nid, info in nn._infos.items():
        expected = sum(
            nn._blocks[bid].size_mb for bid in info.blocks if bid in nn._blocks
        )
        assert info.used_mb == pytest.approx(expected)
    assert all(v >= 0 for v in nn.counters.values())


# ---------------------------------------------------------------------------
# The headline property: crash anywhere, recover to the oracle.
# ---------------------------------------------------------------------------


@st.composite
def crash_scenario(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    crash_at = draw(
        st.floats(min_value=2.0, max_value=900.0, allow_nan=False)
    )
    checkpoint_interval = draw(st.sampled_from([45.0, 120.0, 300.0, 1e6]))
    fsync_interval = draw(st.sampled_from([1, 4, 16, 64]))

    writes = []
    n_files = draw(st.integers(min_value=2, max_value=7))
    for i in range(n_files):
        t = draw(st.floats(min_value=0.0, max_value=600.0, allow_nan=False))
        kind = draw(st.sampled_from(list(FileKind)))
        rf = draw(st.sampled_from([RF11, RF12, RF02]))
        size = draw(st.sampled_from([16.0, 64.0, 200.0]))
        writes.append((t, f"/f{i}", kind, rf, size))
    paths = [w[1] for w in writes]
    deletes = [
        (draw(st.floats(min_value=10.0, max_value=850.0)), p)
        for p in draw(
            st.lists(st.sampled_from(paths), max_size=2, unique=True)
        )
    ]
    converts = [
        (draw(st.floats(min_value=10.0, max_value=850.0)), p)
        for p in draw(
            st.lists(st.sampled_from(paths), max_size=2, unique=True)
        )
    ]

    # Outage windows on a subset of volatile nodes: hibernations,
    # expiries (600 s default) and rejoins all cross the crash point.
    traces = {}
    for nid in draw(
        st.lists(
            st.integers(N_DEDICATED, N_DEDICATED + N_VOLATILE - 1),
            max_size=3,
            unique=True,
        )
    ):
        start = draw(st.floats(min_value=1.0, max_value=700.0))
        length = draw(st.sampled_from([30.0, 200.0, 800.0]))
        traces[nid] = [(start, start + length)]

    return {
        "seed": seed,
        "crash_at": crash_at,
        "checkpoint_interval": checkpoint_interval,
        "fsync_interval": fsync_interval,
        "writes": writes,
        "deletes": deletes,
        "converts": converts,
        "traces": traces,
    }


class TestCrashAtAnyEvent:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plan=crash_scenario())
    def test_property_recovery_matches_never_crashed_oracle(self, plan):
        sim = Simulation(seed=plan["seed"])
        cfg = journal_cfg(
            checkpoint_interval=plan["checkpoint_interval"],
            fsync_interval=plan["fsync_interval"],
        )
        _, _, nn = churn_system(
            sim, cfg,
            writes=plan["writes"],
            deletes=plan["deletes"],
            converts=plan["converts"],
            traces=plan["traces"],
        )
        sim.run(until=plan["crash_at"])

        # The oracle is this very NameNode, frozen at the crash
        # instant: a master that never died would hold exactly this.
        oracle = nn.snapshot_image()
        stats = nn.simulate_crash()
        assert stats["lost_records"] >= 0
        reconcile_synchronously(nn)

        recovered = nn.snapshot_image()
        assert recovered == oracle, (
            f"recovered namespace diverged from the never-crashed "
            f"oracle (lost={stats['lost_records']}, "
            f"replayed={stats['replayed_records']})"
        )

        # The pending-replication set is derived state: everything
        # with a replica deficit or an unmet dedicated want must be
        # queued for repair.
        needed = {
            bid
            for bid, b in nn._blocks.items()
            if nn._block_deficit(b)
        } | set(nn._want_dedicated)
        assert needed <= set(nn._queued)

        # The run continues: the sim must make progress past the
        # crash and the accounting must stay self-consistent.
        sim.run(until=plan["crash_at"] + 1200.0)
        assert sim.now >= plan["crash_at"]
        assert_accounting_invariants(nn)
        assert nn.counters["namenode_crashes"] == 1
        assert nn.counters["recoveries"] == 1

    def test_scheduled_crash_end_to_end(self):
        """The --namenode-crash path: crash armed from config, recovery
        completes on the sim clock, metrics + histogram populated."""
        sim = Simulation(seed=7)
        cfg = journal_cfg(checkpoint_interval=60.0, crash_at=150.0)
        writes = [
            (5.0 * i, f"/f{i}", FileKind.RELIABLE, RF12, 64.0)
            for i in range(8)
        ]
        _, _, nn = churn_system(sim, cfg, writes=writes)
        sim.run(until=600.0)
        assert nn.counters["namenode_crashes"] == 1
        assert nn.counters["recoveries"] == 1
        hist = sim.obs.metrics.histogram("dfs/recovery_seconds")
        assert hist.count == 1
        assert hist.mean > 0.0
        assert_accounting_invariants(nn)

    def test_crash_requires_journal(self, sim):
        from repro.errors import DfsError

        _, _, nn = build(sim)
        with pytest.raises(DfsError):
            nn.simulate_crash()

    def test_double_crash_recovers_twice(self):
        """A second failover while the first is still collecting block
        reports must not wedge or double-count replicas."""
        sim = Simulation(seed=9)
        cfg = journal_cfg(checkpoint_interval=1e6, fsync_interval=4)
        writes = [
            (2.0 * i, f"/f{i}", FileKind.RELIABLE, RF12, 64.0)
            for i in range(6)
        ]
        _, _, nn = churn_system(sim, cfg, writes=writes)
        sim.run(until=100.0)
        oracle = nn.snapshot_image()
        nn.simulate_crash()
        sim.run(until=101.0)  # mid block-report window: reports pending
        nn.simulate_crash()  # second failover preempts the first
        reconcile_synchronously(nn)
        # Disk truth never changed; the doubly-failed-over master still
        # converges to the pre-crash oracle.
        assert nn.snapshot_image() == oracle
        assert nn.counters["namenode_crashes"] == 2
        sim.run(until=400.0)
        assert_accounting_invariants(nn)

    def test_lost_tail_relearned_from_block_reports(self):
        """Registrations that died with the unsynced tail come back via
        the reports — counted as recovered replicas, not re-replication."""
        sim = Simulation(seed=3)
        # Huge fsync interval: every replica record rides the volatile
        # tail (namespace records still sync).
        cfg = journal_cfg(checkpoint_interval=1e6, fsync_interval=10**6)
        writes = [(1.0, "/x", FileKind.RELIABLE, RF12, 64.0)]
        _, _, nn = churn_system(sim, cfg, writes=writes)
        sim.run(until=50.0)
        assert len(nn.file("/x").blocks[0].replicas) == 3
        oracle = nn.snapshot_image()
        stats = nn.simulate_crash()
        assert stats["lost_records"] > 0
        # Journal alone has forgotten the replicas...
        assert nn.file("/x").blocks[0].replicas == set()
        reconcile_synchronously(nn)
        # ...the disks have not.
        assert nn.snapshot_image() == oracle
        assert nn.counters["replicas_recovered"] >= 3


# ---------------------------------------------------------------------------
# Satellite: the journal as a replay log — idempotent, prefix-closed.
# ---------------------------------------------------------------------------


_JOURNAL_CACHE = {}


def recorded_journal(seed=21):
    """(checkpoint image, durable records) captured from a real churny
    run — property tests replay slices of an actual log, not synthetic
    records."""
    if seed not in _JOURNAL_CACHE:
        sim = Simulation(seed=seed)
        cfg = journal_cfg(checkpoint_interval=1e6, fsync_interval=1)
        writes = [
            (3.0 * i, f"/f{i}", kind, rf, size)
            for i, (kind, rf, size) in enumerate(
                [
                    (FileKind.RELIABLE, RF12, 200.0),
                    (FileKind.OPPORTUNISTIC, RF11, 64.0),
                    (FileKind.OPPORTUNISTIC, RF02, 16.0),
                    (FileKind.RELIABLE, RF11, 64.0),
                    (FileKind.OPPORTUNISTIC, RF12, 128.0),
                ]
            )
        ]
        _, _, nn = churn_system(
            sim, cfg,
            writes=writes,
            deletes=[(40.0, "/f1")],
            converts=[(45.0, "/f2")],
            traces={3: [(10.0, 120.0)], 4: [(20.0, 2000.0)]},
        )
        sim.run(until=700.0)
        nn.journal.fsync()
        _JOURNAL_CACHE[seed] = (
            nn.journal.checkpoint_image.copy(),
            list(nn.journal.durable_records()),
        )
        nn.stop()
    base, records = _JOURNAL_CACHE[seed]
    return base.copy(), records


class TestReplayProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_property_replay_prefix_twice_equals_once(self, data):
        base, records = recorded_journal()
        assert len(records) > 20, "churn run produced a trivial journal"
        i = data.draw(st.integers(min_value=0, max_value=len(records)))
        prefix = records[:i]
        once = base.copy().replay(prefix)
        twice = base.copy().replay(prefix).replay(prefix)
        assert once == twice

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_property_replay_is_prefix_closed(self, data):
        """Replaying records one at a time through any split point is
        the same as replaying the whole prefix — no record depends on
        a successor."""
        base, records = recorded_journal()
        i = data.draw(st.integers(min_value=0, max_value=len(records)))
        j = data.draw(st.integers(min_value=0, max_value=i))
        split = base.copy().replay(records[:j]).replay(records[j:i])
        whole = base.copy().replay(records[:i])
        assert split == whole

    def test_encode_decode_round_trip_preserves_replay(self):
        base, records = recorded_journal()
        wire = [JournalRecord.decode(r.encode()) for r in records]
        assert [r.type for r in wire] == [r.type for r in records]
        assert [r.payload for r in wire] == [r.payload for r in records]
        assert base.copy().replay(wire) == base.copy().replay(records)

    def test_recovered_image_ignores_unsynced_tail(self):
        sim = Simulation(seed=5)
        cfg = journal_cfg(checkpoint_interval=1e6, fsync_interval=10**6)
        writes = [(1.0, "/x", FileKind.RELIABLE, RF12, 64.0)]
        _, _, nn = churn_system(sim, cfg, writes=writes)
        sim.run(until=30.0)
        assert nn.journal.unsynced_count() > 0
        img = nn.journal.recovered_image()
        # Namespace records sync; replica adds rode the tail.
        assert "/x" in img.files
        assert all(not reps for reps in img.files["/x"]["replicas"])
