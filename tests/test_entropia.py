"""Tests for the Entropia/SDSC-style Figure-1 trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces import (
    EntropiaConfig,
    compute_stats,
    generate_entropia_day,
    generate_week,
    sample_day_profile,
)


@pytest.fixture(scope="module")
def day_traces():
    cfg = EntropiaConfig(n_nodes=30)
    return generate_entropia_day(cfg, np.random.default_rng(42), day=0)


class TestEntropiaDay:
    def test_day_window_is_8_hours(self, day_traces):
        assert day_traces[0].duration == pytest.approx(8 * 3600.0)

    def test_traces_are_valid_and_nontrivial(self, day_traces):
        assert len(day_traces) == 30
        assert all(len(t) > 0 for t in day_traces)

    def test_mean_unavailability_near_entropia_level(self, day_traces):
        """Paper I: 'individual node unavailability rates average around
        0.4' for the SDSC trace."""
        s = compute_stats(day_traces)
        assert 0.25 <= s.mean_unavailability <= 0.65

    def test_profile_grid_is_10_minutes(self, day_traces):
        prof = sample_day_profile(day_traces, day=0)
        assert len(prof.times) == 48  # 8h / 10min
        assert np.all(np.diff(prof.times) == pytest.approx(600.0))

    def test_profile_within_paper_band(self, day_traces):
        """Fig. 1's y-axis spans 25..95%; our curves must live in a
        similar band (never everyone up, never everyone down)."""
        prof = sample_day_profile(day_traces, day=0)
        assert prof.pct_unavailable.min() >= 5.0
        assert prof.pct_unavailable.max() <= 98.0
        assert 25.0 <= prof.pct_unavailable.mean() <= 75.0

    def test_summary_format(self, day_traces):
        prof = sample_day_profile(day_traces, day=2)
        text = prof.summary()
        assert text.startswith("DAY3:") and "%" in text


class TestWeek:
    def test_week_has_seven_days(self):
        cfg = EntropiaConfig(n_nodes=12, n_days=7)
        profiles = generate_week(cfg, np.random.default_rng(7))
        assert len(profiles) == 7
        assert [p.day for p in profiles] == list(range(7))

    def test_days_differ(self):
        cfg = EntropiaConfig(n_nodes=12, n_days=2)
        profiles = generate_week(cfg, np.random.default_rng(9))
        assert not np.allclose(
            profiles[0].pct_unavailable, profiles[1].pct_unavailable
        )


class TestValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(TraceError):
            EntropiaConfig(n_nodes=0).validate()
        with pytest.raises(TraceError):
            EntropiaConfig(base_rate=1.2).validate()
        with pytest.raises(TraceError):
            EntropiaConfig(day_start_hour=18, day_end_hour=9).validate()

    def test_sample_requires_traces(self):
        with pytest.raises(TraceError):
            sample_day_profile([], day=0)
