"""Service-loop and SLO-accounting tests (S11), including the edge
cases: empty stream, post-horizon arrival, queue saturation, deadline
misses, and seeded determinism."""

from __future__ import annotations

import pytest

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.errors import ConfigError
from repro.metrics.report import latency_quantiles, percentile
from repro.service import (
    MoonService,
    ServedState,
    ServiceConfig,
    bursty_arrivals,
    jain_fairness,
    replay_arrivals,
    sleep_catalog,
)
from repro.workloads import sleep_spec

HOUR = 3600.0


def make_system(seed=3, rate=0.0, n_volatile=8, n_dedicated=2):
    return moon_system(
        SystemConfig(
            cluster=ClusterConfig(
                n_volatile=n_volatile, n_dedicated=n_dedicated
            ),
            trace=TraceConfig(unavailability_rate=rate),
            scheduler=moon_scheduler_config(),
            seed=seed,
        )
    )


def quick_spec(map_seconds=5.0, name="sleep"):
    return sleep_spec(map_seconds, 2.0, n_maps=4, n_reduces=1).with_(
        name=name
    )


def serve(system, entries, **cfg_kwargs):
    cfg_kwargs.setdefault("horizon", 1 * HOUR)
    report = system.run_service(
        replay_arrivals(entries), ServiceConfig(**cfg_kwargs)
    )
    system.jobtracker.stop()
    system.namenode.stop()
    return report


class TestServiceLoop:
    def test_serves_a_small_stream(self):
        system = make_system()
        report = serve(
            system,
            [
                (0.0, "a", quick_spec(), 1800.0),
                (30.0, "b", quick_spec(), 1800.0),
            ],
        )
        assert report.overall.arrived == 2
        assert report.overall.completed == 2
        assert report.overall.deadline_misses == 0
        for r in report.records:
            assert r.state is ServedState.SUCCEEDED
            assert r.response_time > 0
            assert r.queue_wait >= 0

    def test_empty_stream_reports_zeros(self):
        # An empty *synthetic* stream is a valid (if dull) run; an
        # empty "replay" stream is a wiring mistake and fails fast
        # (PR 4 — see TestReplayPatternGuard in
        # tests/test_workload_traces.py).
        system = make_system()
        report = system.run_service(
            [], ServiceConfig(horizon=1 * HOUR), pattern="poisson"
        )
        system.jobtracker.stop()
        system.namenode.stop()
        assert report.overall.arrived == 0
        assert report.overall.completed == 0
        assert report.overall.miss_rate is None
        assert report.overall.p50_response is None
        assert report.fairness is None
        assert "(all)" in report.render()
        with pytest.raises(ConfigError, match="repro replay"):
            make_system().run_service([], ServiceConfig(horizon=1 * HOUR))

    def test_arrival_after_horizon_is_dropped_unserved(self):
        system = make_system()
        report = serve(
            system,
            [
                (0.0, "a", quick_spec(), None),
                (2 * HOUR, "a", quick_spec(), None),  # beyond horizon
            ],
            horizon=1 * HOUR,
        )
        states = sorted(r.state.value for r in report.records)
        assert states == ["dropped", "succeeded"]
        assert report.overall.dropped == 1
        assert report.overall.completed == 1

    def test_queue_saturation_rejects_at_admission(self):
        system = make_system()
        # Three simultaneous arrivals, one slot in flight, depth 1:
        # the third finds the queue full and is rejected.
        report = serve(
            system,
            [(0.0, "a", quick_spec(), None)] * 3,
            max_in_flight=1,
            max_queue_depth=1,
        )
        assert report.overall.rejected == 1
        assert report.overall.completed == 2

    def test_rejected_job_with_deadline_counts_as_miss(self):
        system = make_system()
        # Loose 2h SLOs: the run drains long before any deadline, but
        # the rejected job can never finish, so it misses outright.
        report = serve(
            system,
            [(0.0, "a", quick_spec(), 2 * HOUR)] * 3,
            max_in_flight=1,
            max_queue_depth=1,
        )
        assert report.overall.rejected == 1
        assert report.overall.deadline_misses == 1
        assert report.overall.miss_rate == pytest.approx(1 / 3)

    def test_deadline_miss_when_job_outlives_its_deadline(self):
        system = make_system()
        # A 1-second SLO that no real job can meet.
        report = serve(system, [(0.0, "a", quick_spec(), 1.0)])
        (record,) = report.records
        assert record.state is ServedState.SUCCEEDED
        assert record.finished_at > record.deadline
        assert report.overall.deadline_misses == 1
        assert report.overall.miss_rate == 1.0
        # Goodput excludes the late job; throughput does not.
        assert report.overall.goodput_per_hour == 0.0
        assert report.overall.throughput_per_hour > 0.0

    def test_unfinished_job_past_deadline_counts_as_miss(self):
        system = make_system()
        # A job far longer than horizon + drain: still running at stop.
        entries = [(0.0, "a", quick_spec(map_seconds=4000.0), 60.0)]
        report = serve(
            system, entries, horizon=600.0, drain_limit=0.0
        )
        (record,) = report.records
        assert record.state is ServedState.UNFINISHED
        assert report.overall.deadline_misses == 1
        assert report.overall.unserved == 1

    def test_stranded_queued_job_counts_as_miss(self):
        system = make_system()
        # A blocking long job plus a queued short one with a loose SLO:
        # the service stops before the second is admitted.  Symmetric
        # accounting: stranded-in-queue is a miss just like rejected.
        entries = [
            (0.0, "a", quick_spec(map_seconds=4000.0), None),
            (1.0, "a", quick_spec(), 2 * HOUR),
        ]
        report = serve(
            system, entries, max_in_flight=1, horizon=600.0,
            drain_limit=0.0,
        )
        queued = [r for r in report.records if r.state is ServedState.QUEUED]
        assert len(queued) == 1
        assert report.overall.deadline_misses == 1
        assert "unserved" in report.render().splitlines()[0]

    def test_tenant_quota_limits_concurrency(self):
        system = make_system()
        entries = [(0.0, "a", quick_spec(), None)] * 3 + [
            (1.0, "b", quick_spec(), None)
        ]
        report = serve(
            system, entries, max_in_flight=4, tenant_quota=1
        )
        assert report.overall.completed == 4
        # With quota 1, tenant-a's second job waited for its first.
        a_records = sorted(
            (r for r in report.records if r.tenant == "a"),
            key=lambda r: r.admitted_at,
        )
        assert a_records[1].admitted_at >= a_records[0].finished_at

    def test_admission_prices_evict_cheapest_to_miss(self):
        system = make_system()
        # One running job, depth-1 queue: the deadline-free filler is
        # queued first, then a tight arrival outprices and evicts it.
        entries = [
            (0.0, "a", quick_spec(map_seconds=600.0), None),
            (1.0, "a", quick_spec(), None),
            (2.0, "b", quick_spec(), 900.0),
        ]
        report = serve(
            system, entries, max_in_flight=1, max_queue_depth=1,
            admission_prices=True,
        )
        by_tenant = {r.tenant: r for r in report.records if r.seq > 0}
        assert by_tenant["a"].state is ServedState.REJECTED
        assert by_tenant["b"].state is ServedState.SUCCEEDED
        assert report.evicted == 1
        assert "admission prices: 1 queued jobs evicted" in report.render()
        assert report.to_dict()["evicted"] == 1

    def test_same_seed_identical_report(self):
        def one_run():
            system = make_system(seed=11, rate=0.3)
            arrivals = bursty_arrivals(
                system.sim.rng("service/arrivals"),
                bursts_per_hour=2.0,
                burst_size_mean=5.0,
                horizon=1 * HOUR,
                catalog=sleep_catalog(),
            )
            report = system.run_service(
                arrivals,
                ServiceConfig(policy="edf", max_in_flight=2, horizon=HOUR),
                pattern="bursty",
            )
            system.jobtracker.stop()
            system.namenode.stop()
            return report

        r1, r2 = one_run(), one_run()
        assert r1.render() == r2.render()
        assert r1.to_dict() == r2.to_dict()

    def test_arrival_in_the_past_rejected(self):
        system = make_system()
        system.sim.run(until=100.0)
        with pytest.raises(ConfigError):
            MoonService(
                system,
                ServiceConfig(),
                replay_arrivals([(50.0, "a", quick_spec(), None)]),
            )

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ServiceConfig(policy="lifo").validate()
        with pytest.raises(ConfigError):
            ServiceConfig(max_in_flight=0).validate()
        with pytest.raises(ConfigError):
            ServiceConfig(horizon=0.0).validate()
        with pytest.raises(ConfigError):
            ServiceConfig(check_interval=0.0).validate()


class TestSloMath:
    def test_percentile_interpolates(self):
        vals = [10.0, 20.0, 30.0, 40.0]
        assert percentile(vals, 0) == 10.0
        assert percentile(vals, 100) == 40.0
        assert percentile(vals, 50) == 25.0
        assert percentile([], 50) is None
        assert percentile([7.0], 99) == 7.0
        with pytest.raises(ValueError):
            percentile(vals, 101)

    def test_latency_quantiles_shape(self):
        q = latency_quantiles([1.0, 2.0, 3.0])
        assert set(q) == {"p50", "p95", "p99"}
        assert q["p50"] == 2.0

    def test_jain_fairness(self):
        assert jain_fairness([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_fairness([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)
        assert jain_fairness([]) is None
        assert jain_fairness([0.0]) is None


class TestRunJobsSemantics:
    """Satellite: run_jobs grows run_job's priority + arrival knobs."""

    def test_priorities_respected(self):
        system = make_system(n_volatile=4, n_dedicated=1)
        batch = sleep_spec(30.0, 10.0, n_maps=40, n_reduces=2).with_(
            name="batch"
        )
        urgent = sleep_spec(5.0, 2.0, n_maps=8, n_reduces=1).with_(
            name="urgent"
        )
        results = system.run_jobs([batch, urgent], priorities=[0, 10])
        assert all(r.succeeded for r in results)
        assert results[1].elapsed < results[0].elapsed

    def test_arrival_offsets_stagger_submission(self):
        system = make_system()
        spec = quick_spec()
        results = system.run_jobs(
            [spec, spec], arrival_offsets=[0.0, 600.0]
        )
        assert all(r.succeeded for r in results)
        # The second job could not finish before it was even submitted.
        jobs = system.jobtracker.jobs
        assert jobs[1].submitted_at == 600.0

    def test_mismatched_lengths_rejected(self):
        system = make_system()
        with pytest.raises(ConfigError):
            system.run_jobs([quick_spec()], priorities=[1, 2])
        with pytest.raises(ConfigError):
            system.run_jobs([quick_spec()], arrival_offsets=[-1.0])
        with pytest.raises(ConfigError):
            # An offset beyond the run would leave a stale submit event.
            system.run_jobs(
                [quick_spec()], time_limit=100.0, arrival_offsets=[200.0]
            )

    def test_default_behaviour_unchanged(self):
        system = make_system()
        results = system.run_jobs([quick_spec(), quick_spec()])
        assert len(results) == 2
        assert all(r.succeeded for r in results)
