"""Tests for the NameNode: namespace, node states, replication queue."""

from __future__ import annotations

import pytest

from repro.cluster import (
    AvailabilityMonitor,
    Cluster,
    Node,
    NodeKind,
    connect_network,
)
from repro.config import DfsConfig, NodeSpec
from repro.dfs import FileKind, NameNode, NodeState, ReplicationFactor
from repro.errors import FileAlreadyExists, FileNotFound
from repro.net import FifoNetwork
from repro.simulation import Simulation
from repro.traces import AvailabilityTrace

from helpers import build

RF11 = ReplicationFactor(1, 1)
RF13 = ReplicationFactor(1, 3)
RF02 = ReplicationFactor(0, 2)


class TestNamespace:
    def test_create_file_splits_into_blocks(self, sim):
        _, _, nn = build(sim)
        f = nn.create_file("/in", FileKind.RELIABLE, RF13, 200.0, block_size_mb=64.0)
        assert [b.size_mb for b in f.blocks] == [64.0, 64.0, 64.0, 8.0]
        assert f.size_mb == pytest.approx(200.0)

    def test_zero_size_file_has_one_empty_block(self, sim):
        _, _, nn = build(sim)
        f = nn.create_file("/empty", FileKind.OPPORTUNISTIC, RF11, 0.0)
        assert len(f.blocks) == 1
        assert f.blocks[0].size_mb == 0.0

    def test_duplicate_path_rejected(self, sim):
        _, _, nn = build(sim)
        nn.create_file("/x", FileKind.RELIABLE, RF11, 1.0)
        with pytest.raises(FileAlreadyExists):
            nn.create_file("/x", FileKind.RELIABLE, RF11, 1.0)

    def test_missing_file_raises(self, sim):
        _, _, nn = build(sim)
        with pytest.raises(FileNotFound):
            nn.file("/nope")

    def test_delete_releases_storage(self, sim):
        _, _, nn = build(sim)
        f = nn.create_file("/x", FileKind.RELIABLE, RF11, 64.0)
        nn.register_replica(f.blocks[0], 0)
        assert nn.info(0).used_mb == 64.0
        nn.delete_file("/x")
        assert nn.info(0).used_mb == 0.0
        assert not nn.exists("/x")

    def test_convert_to_reliable_enqueues_dedicated_deficit(self, sim):
        _, _, nn = build(sim)
        f = nn.create_file("/out", FileKind.OPPORTUNISTIC, RF11, 64.0)
        nn.register_replica(f.blocks[0], 3)  # volatile only
        nn.convert_to_reliable("/out")
        assert f.kind is FileKind.RELIABLE
        assert nn.replication_queue_length() == 1


class TestReplicaBookkeeping:
    def test_register_tracks_dedicated_subset(self, sim):
        _, _, nn = build(sim)
        f = nn.create_file("/x", FileKind.RELIABLE, RF13, 64.0)
        b = f.blocks[0]
        nn.register_replica(b, 0)  # dedicated
        nn.register_replica(b, 3)  # volatile
        assert b.dedicated_replicas == {0}
        assert b.volatile_replicas == {3}

    def test_double_register_is_idempotent(self, sim):
        _, _, nn = build(sim)
        f = nn.create_file("/x", FileKind.RELIABLE, RF11, 64.0)
        nn.register_replica(f.blocks[0], 0)
        nn.register_replica(f.blocks[0], 0)
        assert nn.info(0).used_mb == 64.0

    def test_read_targets_volatile_first_for_volatile_reader(self, sim):
        _, _, nn = build(sim)
        f = nn.create_file("/x", FileKind.RELIABLE, RF13, 64.0)
        b = f.blocks[0]
        for nid in (0, 3, 4):
            nn.register_replica(b, nid)
        order = nn.read_targets(b, reader_node=5)
        assert set(order[:2]) == {3, 4}  # volatile replicas first
        assert order[2] == 0  # dedicated last (IV-B)

    def test_read_targets_local_first(self, sim):
        _, _, nn = build(sim)
        f = nn.create_file("/x", FileKind.RELIABLE, RF13, 64.0)
        b = f.blocks[0]
        for nid in (0, 3, 4):
            nn.register_replica(b, nid)
        assert nn.read_targets(b, reader_node=4)[0] == 4

    def test_read_targets_dedicated_first_for_dedicated_reader(self, sim):
        _, _, nn = build(sim)
        f = nn.create_file("/x", FileKind.RELIABLE, RF13, 64.0)
        b = f.blocks[0]
        for nid in (0, 3):
            nn.register_replica(b, nid)
        assert nn.read_targets(b, reader_node=1)[0] == 0

    def test_read_targets_skip_hibernated(self, sim):
        traces = {3: [(10.0, 500.0)]}
        cluster, _, nn = build(sim, traces=traces)
        f = nn.create_file("/x", FileKind.RELIABLE, RF13, 64.0)
        b = f.blocks[0]
        nn.register_replica(b, 3)
        nn.register_replica(b, 0)
        sim.run(until=100.0)  # past hibernate (60 s), before expiry
        assert nn.node_state(3) is NodeState.HIBERNATED
        assert nn.read_targets(b, reader_node=4) == [0]


class TestNodeStateMachine:
    def test_hibernate_then_expire_then_rejoin(self, sim):
        traces = {3: [(0.0, 700.0)]}
        cluster, _, nn = build(sim, traces=traces)
        sim.run(until=100.0)
        assert nn.node_state(3) is NodeState.HIBERNATED
        sim.run(until=650.0)
        assert nn.node_state(3) is NodeState.DEAD
        sim.run(until=701.0)
        assert nn.node_state(3) is NodeState.ALIVE

    def test_hibernation_requeues_only_unanchored_opportunistic(self, sim):
        traces = {3: [(10.0, 500.0)]}
        _, _, nn = build(sim, traces=traces)
        # Opportunistic with dedicated anchor.
        fa = nn.create_file("/anchored", FileKind.OPPORTUNISTIC, RF11, 64.0)
        nn.register_replica(fa.blocks[0], 0)
        nn.register_replica(fa.blocks[0], 3)
        # Opportunistic without anchor; one of its two copies hibernates.
        fu = nn.create_file("/bare", FileKind.OPPORTUNISTIC, RF02, 64.0)
        nn.register_replica(fu.blocks[0], 3)
        nn.register_replica(fu.blocks[0], 4)
        # Reliable file on the dying node (also anchored) - not requeued
        # at hibernation (only at expiry).
        fr = nn.create_file("/rel", FileKind.RELIABLE, RF11, 64.0)
        nn.register_replica(fr.blocks[0], 0)
        nn.register_replica(fr.blocks[0], 3)

        sim.run(until=75.0)  # hibernate trips at ~73 s
        assert nn.node_state(3) is NodeState.HIBERNATED
        sim.run(until=120.0)
        # Only /bare is re-replicated (a third copy on a live volatile).
        assert len(fu.blocks[0].replicas) == 3
        assert fa.blocks[0].replicas == {0, 3}  # untouched: anchored
        assert fr.blocks[0].replicas == {0, 3}  # untouched: reliable rule

    def test_expiry_drops_replicas_and_requeues(self, sim):
        traces = {3: [(0.0, 5000.0)]}
        _, _, nn = build(sim, traces=traces)
        f = nn.create_file("/x", FileKind.RELIABLE, RF11, 64.0)
        nn.register_replica(f.blocks[0], 0)
        nn.register_replica(f.blocks[0], 3)
        sim.run(until=650.0)
        assert nn.node_state(3) is NodeState.DEAD
        assert 3 not in f.blocks[0].replicas
        sim.run(until=700.0)
        # Re-replicated onto some other volatile node.
        assert len(f.blocks[0].volatile_replicas) == 1

    def test_rejoin_overreplication_counts_thrash(self, sim):
        traces = {3: [(0.0, 5000.0)]}
        _, _, nn = build(sim, traces=traces)
        f = nn.create_file("/x", FileKind.RELIABLE, RF11, 64.0)
        nn.register_replica(f.blocks[0], 0)
        nn.register_replica(f.blocks[0], 3)
        sim.run(until=5100.0)
        # Node 3 rejoined; meanwhile its block went elsewhere.
        assert nn.counters["replication_thrash"] >= 1
        assert 3 in f.blocks[0].replicas

    def test_lost_block_counted(self, sim):
        traces = {3: [(0.0, 5000.0)]}
        _, _, nn = build(sim, traces=traces)
        f = nn.create_file("/only", FileKind.OPPORTUNISTIC, RF11, 64.0)
        nn.register_replica(f.blocks[0], 3)
        sim.run(until=700.0)
        assert nn.counters["blocks_lost"] == 1


class TestReplicationQueue:
    def test_reliable_served_before_opportunistic(self, sim):
        _, net, nn = build(sim, cfg=DfsConfig(max_replications_per_scan=1,
                                              replication_check_interval=10.0))
        fo = nn.create_file("/opp", FileKind.OPPORTUNISTIC, RF02, 64.0)
        nn.register_replica(fo.blocks[0], 3)
        fr = nn.create_file("/rel", FileKind.RELIABLE, RF02, 64.0)
        nn.register_replica(fr.blocks[0], 4)
        nn.note_write_shortfall(fo.blocks[0], declined=False)
        nn.note_write_shortfall(fr.blocks[0], declined=False)
        # One replication per scan: reliable must win the first scan.
        sim.run(until=13.0)
        assert len(fr.blocks[0].replicas) == 2
        assert len(fo.blocks[0].replicas) == 1
        sim.run(until=30.0)
        assert len(fo.blocks[0].replicas) == 2

    def test_p_estimate_tracks_downtime(self, sim):
        traces = {3: [(0.0, 50000.0)], 4: [(0.0, 50000.0)]}
        _, _, nn = build(sim, n_volatile=4, traces=traces)
        sim.run(until=500.0)
        # 2 of 4 volatile nodes down the whole window.
        assert nn.estimated_p() == pytest.approx(0.5, abs=0.05)

    def test_want_dedicated_filled_after_unthrottle(self, sim):
        """Opportunistic block that was declined its dedicated copy gets
        one once a dedicated node has room again."""
        _, net, nn = build(sim)
        f = nn.create_file("/i", FileKind.OPPORTUNISTIC, RF11, 8.0)
        nn.register_replica(f.blocks[0], 3)
        nn.note_write_shortfall(f.blocks[0], declined=True)
        sim.run(until=60.0)
        # Dedicated nodes are idle (never throttled): the queue path
        # fills the dedicated copy on its own.
        assert f.blocks[0].has_dedicated_replica()


class TestCommitWatchers:
    """when_fully_replicated + the per-block pending bookkeeping."""

    def test_fires_once_block_reaches_factor(self, sim):
        _, _, nn = build(sim)
        f = nn.create_file("/out", FileKind.RELIABLE, ReplicationFactor(0, 2), 64.0)
        nn.register_replica(f.blocks[0], 3)
        fired = []
        nn.when_fully_replicated("/out", lambda: fired.append(sim.now))
        sim.run(until=1.0)
        assert fired == []  # one volatile copy of two
        nn.register_replica(f.blocks[0], 4)
        sim.run(until=2.0)
        assert len(fired) == 1

    def test_already_satisfied_fires_immediately(self, sim):
        _, _, nn = build(sim)
        f = nn.create_file("/out", FileKind.RELIABLE, ReplicationFactor(0, 1), 64.0)
        nn.register_replica(f.blocks[0], 3)
        fired = []
        nn.when_fully_replicated("/out", lambda: fired.append(True))
        sim.run(until=1.0)
        assert fired == [True]

    def test_wake_resolving_deficit_fires_without_registration(self, sim):
        """A watched block whose deficit exists only because its holder
        hibernated must commit when the node wakes — no new replica is
        ever registered on that block."""
        traces = {3: [(10.0, 120.0)]}
        cluster, _, nn = build(sim, traces=traces)
        f = nn.create_file("/out", FileKind.RELIABLE, ReplicationFactor(0, 1), 64.0)
        nn.register_replica(f.blocks[0], 3)
        sim.run(until=100.0)  # node 3 judged hibernated (60 s threshold)
        assert nn.node_state(3) is NodeState.HIBERNATED
        fired = []
        nn.when_fully_replicated("/out", lambda: fired.append(sim.now))
        sim.run(until=115.0)
        assert fired == []  # still down; sole copy unreachable
        sim.run(until=200.0)  # node resumes at 120, judged alive again
        assert nn.node_state(3) is NodeState.ALIVE
        assert len(fired) == 1

    def test_regressing_block_rejoins_pending_set(self, sim):
        """A block that slips back below factor after leaving the
        pending set must block the commit again (exactness guard)."""
        traces = {3: [(10.0, 1000.0)]}
        cluster, _, nn = build(sim, traces=traces)
        f = nn.create_file(
            "/out", FileKind.RELIABLE, ReplicationFactor(0, 1), 128.0,
            block_size_mb=64.0,
        )
        b0, b1 = f.blocks
        nn.register_replica(b0, 3)  # will expire with node 3
        fired = []
        nn.when_fully_replicated("/out", lambda: fired.append(sim.now))
        # b0 satisfied, b1 pending; node 3 dies at ~610 s, dropping
        # b0's only replica -> b0 must re-enter the pending set.
        sim.run(until=700.0)
        assert nn.node_state(3) is NodeState.DEAD
        nn.register_replica(b1, 4)
        sim.run(until=710.0)
        assert fired == []  # b0 regressed; commit must still be held
        nn.register_replica(b0, 5)
        sim.run(until=720.0)
        assert len(fired) == 1


class TestWatchersAcrossFailover:
    """Commit watchers vs the durable-metadata layer: the dirty-sets
    are derived state — never journaled — and must be recomputed, not
    lost, by checkpoints and crash/recover cycles."""

    @staticmethod
    def _journal_cfg():
        from repro.config import JournalConfig

        return DfsConfig(
            journal=JournalConfig(enabled=True, fsync_interval=1)
        )

    def test_watcher_fires_once_across_crash_recover(self, sim):
        """A watch armed before the crash survives the failover and
        fires exactly once when the deficit resolves after recovery."""
        _, _, nn = build(sim, cfg=self._journal_cfg())
        f = nn.create_file(
            "/out", FileKind.RELIABLE, ReplicationFactor(0, 2), 64.0
        )
        nn.register_replica(f.blocks[0], 3)
        fired = []
        nn.when_fully_replicated("/out", lambda: fired.append(sim.now))
        sim.run(until=1.0)
        assert fired == []
        nn.simulate_crash()
        for nid in list(nn._report_owed):
            nn.deliver_block_report(nid)
        assert fired == []  # still one volatile copy of two
        nn.register_replica(f.blocks[0], 4)
        sim.run(until=2.0)
        assert len(fired) == 1

    def test_watch_pending_survives_checkpoint_truncation(self, sim):
        """A checkpoint truncates every journal record the watch's
        dirty-set was derived from; a crash right after must recompute
        the pending set from the snapshot, not fire (or drop) the
        watch early."""
        _, _, nn = build(sim, cfg=self._journal_cfg())
        f = nn.create_file(
            "/out", FileKind.RELIABLE, ReplicationFactor(0, 2), 64.0
        )
        nn.register_replica(f.blocks[0], 3)
        fired = []
        nn.when_fully_replicated("/out", lambda: fired.append(sim.now))
        nn.take_checkpoint()
        assert len(nn.journal) == 0  # log truncated under the watch
        nn.simulate_crash()
        for nid in list(nn._report_owed):
            nn.deliver_block_report(nid)
        assert fired == []  # pending set recomputed, deficit intact
        assert "/out" in nn._watch_pending
        nn.register_replica(f.blocks[0], 4)
        sim.run(until=1.0)
        assert len(fired) == 1

    def test_satisfied_watch_fires_during_recovery(self, sim):
        """If the lost journal tail held the registration that
        satisfied the watch, the block report both re-learns the
        replica and fires the watcher."""
        from repro.config import JournalConfig

        cfg = DfsConfig(
            journal=JournalConfig(enabled=True, fsync_interval=10**6)
        )
        _, _, nn = build(sim, cfg=cfg)
        f = nn.create_file(
            "/out", FileKind.RELIABLE, ReplicationFactor(0, 1), 64.0
        )
        fired = []
        nn.when_fully_replicated("/out", lambda: fired.append(True))
        nn.register_replica(f.blocks[0], 3)  # rides the unsynced tail
        sim.run(until=1.0)
        assert fired == [True]
        stats = nn.simulate_crash()
        assert stats["lost_records"] >= 1
        # Recovery forgot the replica: the watch would block a commit
        # retry until the disk answers.
        assert f.blocks[0].replicas == set()
        nn.deliver_block_report(3)
        assert f.blocks[0].replicas == {3}
        assert "/out" not in nn._watch_pending
