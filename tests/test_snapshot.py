"""Snapshot/resume checkpoints (engine scale-out PR).

The contract under test: ``advance(t1); save; load; advance(t2)``
behaves *exactly* like a straight ``advance(t2)`` — same events, same
RNG draws, same report — including under churn, honest detectors,
preemption and the PR 8 NameNode journal.  Plus the envelope
hygiene: versioning, magic, and loud errors on unpicklable graphs.
"""

from __future__ import annotations

import io
import json
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import (
    ClusterConfig,
    DetectorConfig,
    DfsConfig,
    JournalConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import load_snapshot, moon_system, save_snapshot
from repro.core.snapshot import SNAPSHOT_VERSION, _MAGIC, roundtrip
from repro.errors import SnapshotError
from repro.service import MoonService, ServiceConfig, replay_arrivals
from repro.service.preempt import PreemptConfig
from repro.workloads import sleep_spec

HOUR = 3600.0


def build_service(
    seed=7,
    rate=0.3,
    detector=None,
    preempt=None,
    journal=False,
    horizon=0.5 * HOUR,
    n_jobs=12,
):
    kwargs = {}
    if detector is not None:
        kwargs["detector"] = DetectorConfig(mode=detector)
    if journal:
        kwargs["dfs"] = DfsConfig(journal=JournalConfig(enabled=True))
    system = moon_system(
        SystemConfig(
            cluster=ClusterConfig(n_volatile=8, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=rate),
            scheduler=moon_scheduler_config(),
            seed=seed,
            **kwargs,
        )
    )
    spec = sleep_spec(20.0, 5.0, n_maps=6, n_reduces=2)
    entries = [
        (i * 40.0, f"t{i % 3}", spec.with_(name=f"j{i}"), 1800.0)
        for i in range(n_jobs)
    ]
    return MoonService(
        system,
        ServiceConfig(horizon=horizon, policy="sjf", preempt=preempt),
        replay_arrivals(entries),
    )


def report_key(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True, default=str)


def run_straight(**kwargs) -> str:
    svc = build_service(**kwargs)
    svc.advance(svc.config.horizon + svc.config.drain_limit)
    return report_key(svc.finalize())


def run_segmented(cuts, **kwargs) -> str:
    svc = build_service(**kwargs)
    for t in cuts:
        svc.advance(t)
        svc = roundtrip(svc)
    svc.advance(svc.config.horizon + svc.config.drain_limit)
    return report_key(svc.finalize())


class TestSegmentedEqualsStraight:
    """The headline property, across the failure-model cube."""

    def test_plain_churny_stream(self):
        assert run_straight() == run_segmented([60.0, 300.0, 900.0])

    @pytest.mark.parametrize("mode", ["timeout", "adaptive"])
    def test_honest_detectors(self, mode):
        assert run_straight(detector=mode) == run_segmented(
            [150.0, 700.0], detector=mode
        )

    def test_with_preemption(self):
        pre = PreemptConfig(mode="pause")
        assert run_straight(preempt=pre) == run_segmented(
            [200.0, 1000.0], preempt=pre
        )

    def test_with_namenode_journal(self):
        # Composition with PR 8: the in-memory journal and checkpoint
        # cadence travel inside the snapshot.
        assert run_straight(journal=True) == run_segmented(
            [90.0, 450.0], journal=True
        )

    def test_cut_every_interval_is_harmless(self):
        # Many tiny segments (snapshot pressure on every moving part).
        cuts = [float(t) for t in range(100, 1500, 200)]
        assert run_straight() == run_segmented(cuts)


class TestSnapshotFile:
    def test_file_roundtrip(self, tmp_path):
        svc = build_service()
        svc.advance(300.0)
        path = str(tmp_path / "ckpt.snap")
        save_snapshot(svc, path)
        restored = load_snapshot(path)
        assert restored.sim.now == svc.sim.now
        assert len(restored.records) == len(svc.records)
        restored.advance(
            restored.config.horizon + restored.config.drain_limit
        )
        report = restored.finalize()
        assert report_key(report) == run_straight()

    def test_restored_world_is_independent(self):
        svc = build_service()
        svc.advance(200.0)
        clone = roundtrip(svc)
        clone.advance(400.0)
        # The original stays parked where it was left.
        assert svc.sim.now == 200.0
        assert clone.sim.now == 400.0

    def test_fresh_process_resume_continues_id_allocation(self, tmp_path):
        # The class-level itertools.count counters are process-global:
        # restoring in a *new* interpreter must continue allocation,
        # not restart job0/transfer0 and collide with pickled state.
        svc = build_service()
        svc.advance(300.0)
        pre_ids = sorted(
            int(j.job_id[3:]) for j in svc.system.jobtracker.jobs
        )
        path = tmp_path / "ckpt.snap"
        save_snapshot(svc, str(path))
        code = (
            "import json, sys\n"
            "from repro.core import load_snapshot\n"
            "from repro.workloads import sleep_spec\n"
            "svc = load_snapshot(sys.argv[1])\n"
            "svc.advance(svc.config.horizon + svc.config.drain_limit)\n"
            "rep = svc.finalize()\n"
            "job = svc.system.submit(\n"
            "    sleep_spec(1.0, 1.0, n_maps=1, n_reduces=1))\n"
            "print(json.dumps({'new_id': int(job.job_id[3:]),\n"
            "                  'report': rep.to_dict()},\n"
            "                 sort_keys=True, default=str))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code, str(path)],
            capture_output=True,
            text=True,
            check=True,
        )
        got = json.loads(out.stdout)
        assert got["new_id"] > max(pre_ids)
        assert (
            json.dumps(got["report"], sort_keys=True, default=str)
            == run_straight()
        )


class TestCli:
    SERVE = [
        "serve", "--hours", "0.3", "--catalog", "sleep",
        "--volatile", "6", "--dedicated", "2", "--policy", "fifo",
    ]

    def test_serve_checkpoint_then_resume_matches(self, tmp_path, capsys):
        from repro.cli.main import main

        snap = tmp_path / "svc.snap"
        rc = main(self.SERVE + ["--checkpoint", str(snap),
                                "--checkpoint-at", "300"])
        assert rc == 0
        straight = capsys.readouterr().out.split("checkpoint written")[1]
        straight = straight.split("\n", 1)[1]
        rc = main(["resume", str(snap)])
        assert rc == 0
        assert capsys.readouterr().out == straight

    def test_checkpoint_flags_go_together(self, capsys):
        from repro.cli.main import main

        assert main(self.SERVE + ["--checkpoint-at", "300"]) == 2

    def test_resume_until_requires_checkpoint(self, tmp_path):
        from repro.cli.main import main

        snap = tmp_path / "svc.snap"
        assert main(self.SERVE + ["--checkpoint", str(snap),
                                  "--checkpoint-at", "60"]) == 0
        assert main(["resume", str(snap), "--until", "120"]) == 2

    def test_resume_unreadable_snapshot_is_exit_2(self, tmp_path):
        from repro.cli.main import main

        bad = tmp_path / "junk.snap"
        bad.write_bytes(b"not a snapshot")
        assert main(["resume", str(bad)]) == 2


class TestEnvelope:
    def test_bad_magic_rejected(self):
        from repro.core import restore_bytes

        with pytest.raises(SnapshotError, match="magic"):
            restore_bytes(b"definitely not a snapshot")

    def test_version_mismatch_rejected(self):
        payload = {
            "version": SNAPSHOT_VERSION + 1,
            "root": None,
            "counters": {},
        }
        data = _MAGIC + pickle.dumps(payload)
        from repro.core import restore_bytes

        with pytest.raises(SnapshotError, match="version"):
            restore_bytes(data)

    def test_unpicklable_graph_is_a_loud_error(self):
        svc = build_service()
        svc.advance(60.0)
        # A stray closure smuggled onto a long-lived object must fail
        # at save time with a pointed message, not corrupt the file.
        svc._smuggled = lambda: None
        buf = io.BytesIO()
        with pytest.raises(SnapshotError, match="closure"):
            save_snapshot(svc, buf)

    def test_truncated_payload_is_corrupt(self):
        svc = build_service()
        buf = io.BytesIO()
        save_snapshot(svc, buf)
        data = buf.getvalue()[: len(_MAGIC) + 50]
        from repro.core import restore_bytes

        with pytest.raises(SnapshotError, match="corrupt"):
            restore_bytes(data)
