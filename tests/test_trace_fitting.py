"""Tests for outage-length distribution fitting (ref [15] methodology)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces import fit_outages, fit_report, make_distribution

RNG = lambda s=0: np.random.default_rng(s)  # noqa: E731


def sample(name, n=4000, mean=409.0, sigma=200.0, seed=1):
    dist = make_distribution(name, mean, sigma, minimum=1.0)
    return dist.sample(RNG(seed), n)


class TestRecovery:
    """Each family's own samples should rank it at (or near) the top."""

    # Normal is sampled at lower CV: truncation-at-minimum distorts a
    # wide normal's left tail enough for Weibull to edge it on AIC.
    @pytest.mark.parametrize(
        "name,sigma",
        [("normal", 100.0), ("lognormal", 200.0), ("weibull", 200.0)],
    )
    def test_generator_family_recovered(self, name, sigma):
        results = fit_outages(sample(name, sigma=sigma))
        best_aic = results[0].aic
        mine = next(r for r in results if r.name == name)
        assert mine.aic <= best_aic + 10.0
        assert results[0].name in ("normal", "lognormal", "weibull")

    def test_exponential_recovered(self):
        data = RNG(3).exponential(409.0, size=4000)
        results = fit_outages(data)
        mine = next(r for r in results if r.name == "exponential")
        # Weibull with k~1 nests the exponential; allow a tie.
        assert mine.aic <= results[0].aic + 10.0

    def test_fitted_moments_close(self):
        data = sample("lognormal", mean=409.0, sigma=300.0)
        results = fit_outages(data)
        ln = next(r for r in results if r.name == "lognormal")
        assert ln.mean == pytest.approx(data.mean(), rel=0.15)


class TestRanking:
    def test_sorted_by_aic(self):
        results = fit_outages(sample("normal"))
        aics = [r.aic for r in results]
        assert aics == sorted(aics)

    def test_aic_penalises_parameters(self):
        r = fit_outages(sample("normal"))[0]
        assert r.aic == pytest.approx(2 * r.n_params - 2 * r.log_likelihood)

    def test_all_registered_families_attempted(self):
        names = {r.name for r in fit_outages(sample("normal"))}
        assert {"normal", "lognormal", "exponential", "pareto"} <= names


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(TraceError):
            fit_outages([1.0, 2.0])

    def test_nonpositive_rejected(self):
        with pytest.raises(TraceError):
            fit_outages([1.0, -2.0, 3.0])


class TestReport:
    def test_report_renders(self):
        text = fit_report(fit_outages(sample("weibull")))
        assert "AIC" in text
        assert "weibull" in text

    def test_calibration_roundtrip(self):
        """The docstring workflow: fit -> TraceConfig -> generate."""
        from repro.config import TraceConfig
        from repro.traces import generate_trace

        best = fit_outages(sample("lognormal"))[0]
        cfg = TraceConfig(
            unavailability_rate=0.4,
            distribution=best.name,
            mean_outage=best.mean,
            outage_sigma=best.sigma,
            min_outage=1.0,
        )
        tr = generate_trace(cfg, RNG(9))
        assert tr.unavailability_rate() == pytest.approx(0.4, abs=1e-6)
