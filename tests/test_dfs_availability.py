"""Tests for the analytical availability model (paper's arithmetic)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfs import (
    block_availability,
    hybrid_equivalent,
    replication_cost_mb,
    required_volatile_replicas,
)
from repro.errors import DfsError


class TestPaperNumbers:
    def test_eleven_replicas_at_p04_for_four_nines(self):
        """Paper I: 'when machine unavailability rate is 0.4, eleven
        replicas are needed to achieve 99.99% availability'."""
        assert required_volatile_replicas(0.9999, 0.4) == 11
        assert block_availability(0.4, 11) > 0.9999
        assert block_availability(0.4, 10) < 0.9999

    def test_hybrid_one_dedicated_three_volatile(self):
        """Paper III: with a dedicated copy (p_d ~ 0.001), 99.99% needs
        only one dedicated + three volatile copies."""
        assert hybrid_equivalent(0.9999, 0.4, 0.001) <= 3
        assert block_availability(0.4, 3, p_dedicated=0.001, d=1) > 0.9999

    def test_hadoop_vo_baseline_six_replicas(self):
        """Paper VI-C: six uniform replicas give ~99.5% at p=0.4."""
        a = block_availability(0.4, 6)
        assert a == pytest.approx(0.9959, abs=0.001)

    def test_adaptive_v_prime_examples(self):
        """IV-A rule at the paper's 0.9 goal."""
        assert required_volatile_replicas(0.9, 0.5) == 4  # 1-0.5^4 = 0.9375
        assert required_volatile_replicas(0.9, 0.3) == 2
        # At exactly p=0.1, 1 - 0.1^1 = 0.9 is NOT > 0.9: need 2.
        assert required_volatile_replicas(0.9, 0.1) == 2

    def test_p_zero_needs_single_copy(self):
        assert required_volatile_replicas(0.9, 0.0) == 1

    def test_clamped_to_max(self):
        assert required_volatile_replicas(0.999999, 0.9, max_replicas=8) == 8


class TestValidation:
    def test_bad_p_rejected(self):
        with pytest.raises(DfsError):
            block_availability(1.0, 3)
        with pytest.raises(DfsError):
            required_volatile_replicas(0.9, -0.1)

    def test_bad_goal_rejected(self):
        with pytest.raises(DfsError):
            required_volatile_replicas(1.0, 0.4)
        with pytest.raises(DfsError):
            hybrid_equivalent(0.0, 0.4, 0.001)

    def test_zero_replicas_unavailable(self):
        assert block_availability(0.4, 0) == 0.0

    def test_replication_cost(self):
        assert replication_cost_mb(64.0, 3) == 128.0
        assert replication_cost_mb(64.0, 1) == 0.0
        with pytest.raises(DfsError):
            replication_cost_mb(64.0, 0)


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        p=st.floats(min_value=0.01, max_value=0.95),
        v=st.integers(min_value=1, max_value=20),
    )
    def test_property_more_replicas_never_hurt(self, p, v):
        assert block_availability(p, v + 1) >= block_availability(p, v)

    @settings(max_examples=100, deadline=None)
    @given(
        goal=st.floats(min_value=0.5, max_value=0.9999),
        p=st.floats(min_value=0.01, max_value=0.9),
    )
    def test_property_v_prime_meets_goal_minimally(self, goal, p):
        # Lift the default cap: minimality only holds uncapped (e.g.
        # p=0.875 at four nines needs 69 > 64 replicas).
        v = required_volatile_replicas(goal, p, max_replicas=10_000)
        assert block_availability(p, v) > goal
        if v > 1:
            assert block_availability(p, v - 1) <= goal

    @settings(max_examples=50, deadline=None)
    @given(
        p=st.floats(min_value=0.05, max_value=0.9),
        pd=st.floats(min_value=0.0001, max_value=0.05),
    )
    def test_property_dedicated_copy_reduces_needed_volatile(self, p, pd):
        goal = 0.999
        pure = required_volatile_replicas(goal, p)
        hybrid = hybrid_equivalent(goal, p, pd)
        assert hybrid <= pure
