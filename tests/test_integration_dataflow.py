"""End-to-end data-lifecycle integration tests.

These cross-check the full stack — staging, intermediate files, output
commit — against the paper's data-management contract (Section IV):
input and committed output are *reliable* (≥ 1 dedicated replica),
intermediate data is transient and cleaned up, and output only becomes
visible when fully replicated.
"""

from __future__ import annotations

import pytest

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.dfs import FileKind, ReplicationFactor
from repro.workloads import sort_spec


def cfg(rate=0.0, seed=7, n_volatile=12, n_dedicated=2):
    return SystemConfig(
        cluster=ClusterConfig(n_volatile=n_volatile, n_dedicated=n_dedicated),
        trace=TraceConfig(unavailability_rate=rate),
        scheduler=moon_scheduler_config(hybrid_aware=True),
        seed=seed,
    )


def small_sort(**overrides):
    spec = sort_spec(n_maps=12, block_mb=8.0, **overrides).with_(n_reduces=4)
    spec.validate()
    return spec


class TestDataLifecycle:
    def test_outputs_committed_reliable_with_dedicated_copy(self):
        system = moon_system(cfg())
        result = system.run_job(small_sort())
        assert result.succeeded
        outputs = [
            f for f in system.namenode.files() if "/output" in f.path
        ]
        assert len(outputs) == 4  # one per reduce
        for f in outputs:
            # IV-A: output converts opportunistic -> reliable at commit,
            # and reliable files always hold >= 1 dedicated copy.
            assert f.kind is FileKind.RELIABLE
            for block in f.blocks:
                assert len(block.dedicated_replicas) >= f.rf.dedicated
                assert len(block.replicas) >= f.rf.dedicated + f.rf.volatile

    def test_intermediate_files_cleaned_after_job(self):
        system = moon_system(cfg())
        result = system.run_job(small_sort())
        assert result.succeeded
        leftovers = [
            f.path for f in system.namenode.files() if "/intermediate" in f.path
        ]
        assert leftovers == []

    def test_input_staged_at_requested_factor(self):
        system = moon_system(cfg())
        spec = small_sort(input_rf=ReplicationFactor(1, 3))
        job = system.submit(spec)
        f = system.namenode.file(job.input_path())
        assert f.kind is FileKind.RELIABLE
        for block in f.blocks:
            assert len(block.dedicated_replicas) == 1
            assert len(block.volatile_replicas) == 3

    def test_stable_run_speculates_only_in_homestretch(self):
        """At zero volatility nothing freezes and nothing lags; the
        only duplicates MOON may issue are the *proactive* homestretch
        copies of the final tasks (paper V-B replicates them regardless
        of progress), bounded by the reduce count."""
        system = moon_system(cfg(rate=0.0))
        result = system.run_job(small_sort())
        assert result.succeeded
        assert result.metrics.map_reexecutions == 0
        assert result.metrics.duplicated_tasks <= 12 + 4
        assert result.metrics.profile.killed_maps == 0

    def test_volatile_run_completes_with_bounded_duplicates(self):
        system = moon_system(cfg(rate=0.4, seed=3))
        result = system.run_job(small_sort())
        assert result.succeeded
        # Job-level speculative cap: duplicates stay in the same order
        # of magnitude as the task count, never runaway.
        n_tasks = 12 + 4
        assert result.metrics.duplicated_tasks <= 4 * n_tasks

    def test_elapsed_monotone_in_volatility(self):
        spec = small_sort()
        t0 = moon_system(cfg(rate=0.0)).run_job(spec).elapsed
        t5 = moon_system(cfg(rate=0.5, seed=11)).run_job(spec).elapsed
        assert t5 > t0

    def test_profile_times_positive_on_success(self):
        result = moon_system(cfg()).run_job(small_sort())
        p = result.profile
        assert p.avg_map_time > 0
        assert p.avg_shuffle_time > 0
        assert p.avg_reduce_time > 0

    def test_no_live_attempts_after_success(self):
        """Job completion kills outstanding attempts — including maps
        re-executed for a transiently-lost output that no reduce ended
        up needing (regression found by the system fuzzer)."""
        system = moon_system(cfg(rate=0.4, seed=3))
        result = system.run_job(small_sort())
        assert result.succeeded
        job = system.jobtracker.jobs[0]
        assert all(not t.live_attempts() for t in job.tasks)


class TestReplicationQueueConvergence:
    def test_underreplicated_blocks_healed_after_run(self):
        """Blocks written short of their factor (e.g. during outages)
        are healed by the NameNode's replication queue."""
        system = moon_system(cfg(rate=0.3, seed=13))
        result = system.run_job(small_sort())
        assert result.succeeded
        # Drive the periodic services a while past job completion.
        system.sim.run(until=system.sim.now + 600.0)
        deficits = [
            (f.path, b.index)
            for f in system.namenode.files()
            for b in f.blocks
            if system.namenode._block_deficit(b)
        ]
        # Whatever remains must only be blocks whose nodes are all
        # currently judged down; with rate 0.3 the queue should have
        # drained essentially everything.
        assert len(deficits) <= 2
