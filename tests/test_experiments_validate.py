"""Tests for the simulator-vs-analytical cross-validation driver."""

from __future__ import annotations

import pytest

from repro.experiments.validate import (
    ValidationPoint,
    report,
    run_validation,
    within_band,
)


class TestValidationPoint:
    def test_ratio(self):
        p = ValidationPoint("w", 0.1, simulated=200.0, estimated=100.0)
        assert p.ratio == 2.0

    def test_dnf_ratio_none(self):
        p = ValidationPoint("w", 0.1, simulated=None, estimated=100.0)
        assert p.ratio is None


class TestWithinBand:
    def test_accepts_band(self):
        pts = [ValidationPoint("w", 0.1, 150.0, 100.0)]
        assert within_band(pts)

    def test_rejects_blowup(self):
        pts = [ValidationPoint("w", 0.1, 1000.0, 100.0)]
        assert not within_band(pts)

    def test_rejects_empty(self):
        assert not within_band([])
        assert not within_band(
            [ValidationPoint("w", 0.1, None, 100.0)]
        )


class TestEndToEnd:
    def test_grid_agrees_within_band(self):
        """The headline cross-check: the full simulator and the
        closed-form model agree within a small factor across rates."""
        points = run_validation(rates=(0.0, 0.2), n_volatile=12, seed=3)
        assert len(points) == 4
        assert within_band(points)

    def test_report_renders(self):
        points = run_validation(rates=(0.0,), n_volatile=8, seed=3)
        text = report(points)
        assert "sim/est" in text
        assert "sleep[sort]" in text
