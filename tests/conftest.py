"""Shared fixtures for the MOON reproduction test suite."""

from __future__ import annotations

import pytest

from repro.simulation import Simulation


@pytest.fixture
def sim() -> Simulation:
    return Simulation(seed=1234)


@pytest.fixture
def rng(sim):
    return sim.rng("test")
