"""Tests for availability traces (S2): model invariants + the paper's
synthetic generation method."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TraceConfig
from repro.errors import TraceError
from repro.traces import (
    AvailabilityTrace,
    compute_stats,
    empirical_rate,
    generate_cluster_traces,
    generate_trace,
    measured_unavailability,
)


class TestTraceModel:
    def test_empty_trace_always_available(self):
        tr = AvailabilityTrace.always_available(100.0)
        assert tr.is_available(0.0) and tr.is_available(99.9)
        assert tr.unavailability_rate() == 0.0
        assert tr.next_transition(0.0) is None

    def test_half_open_interval_semantics(self):
        tr = AvailabilityTrace([(10.0, 20.0)], 100.0)
        assert tr.is_available(9.999)
        assert not tr.is_available(10.0)
        assert not tr.is_available(19.999)
        assert tr.is_available(20.0)

    def test_next_transition_from_up_and_down(self):
        tr = AvailabilityTrace([(10.0, 20.0), (50.0, 60.0)], 100.0)
        assert tr.next_transition(0.0) == (10.0, False)
        assert tr.next_transition(15.0) == (20.0, True)
        assert tr.next_transition(20.0) == (50.0, False)
        assert tr.next_transition(60.0) is None

    def test_overlap_rejected(self):
        with pytest.raises(TraceError):
            AvailabilityTrace([(0.0, 10.0), (5.0, 15.0)], 100.0)

    def test_out_of_bounds_rejected(self):
        with pytest.raises(TraceError):
            AvailabilityTrace([(90.0, 110.0)], 100.0)
        with pytest.raises(TraceError):
            AvailabilityTrace([(-5.0, 5.0)], 100.0)

    def test_inverted_rejected(self):
        with pytest.raises(TraceError):
            AvailabilityTrace([(10.0, 10.0)], 100.0)

    def test_unavailability_rate(self):
        tr = AvailabilityTrace([(0.0, 25.0), (50.0, 75.0)], 100.0)
        assert tr.unavailability_rate() == pytest.approx(0.5)

    def test_outage_lengths(self):
        tr = AvailabilityTrace([(0.0, 10.0), (20.0, 50.0)], 100.0)
        assert tr.outage_lengths().tolist() == [10.0, 30.0]

    def test_shifted_preserves_total_downtime(self):
        tr = AvailabilityTrace([(10.0, 30.0), (80.0, 95.0)], 100.0)
        sh = tr.shifted(40.0)
        assert sh.unavailable_seconds() == pytest.approx(tr.unavailable_seconds())

    def test_shifted_wraps_across_end(self):
        tr = AvailabilityTrace([(90.0, 99.0)], 100.0)
        sh = tr.shifted(5.0)
        # [95, 104) wraps to [95, 100) + [0, 4).
        assert not sh.is_available(96.0)
        assert not sh.is_available(2.0)
        assert sh.is_available(10.0)


class TestGenerator:
    def _cfg(self, rate, duration=8 * 3600.0):
        return TraceConfig(unavailability_rate=rate, duration=duration)

    def test_zero_rate_gives_empty_trace(self):
        tr = generate_trace(self._cfg(0.0), np.random.default_rng(0))
        assert len(tr) == 0

    @pytest.mark.parametrize("rate", [0.1, 0.3, 0.5])
    def test_rate_matches_target(self, rate):
        """Paper VI: 'the percentage of unavailable time is equal to a
        given node unavailability rate'."""
        tr = generate_trace(self._cfg(rate), np.random.default_rng(1))
        assert tr.unavailability_rate() == pytest.approx(rate, rel=0.05)

    def test_mean_outage_near_409s(self):
        cfg = self._cfg(0.4)
        lengths = np.concatenate(
            [
                generate_trace(cfg, np.random.default_rng(s)).outage_lengths()
                for s in range(10)
            ]
        )
        assert lengths.mean() == pytest.approx(409.0, rel=0.15)

    def test_min_outage_respected_before_rescale(self):
        cfg = TraceConfig(
            unavailability_rate=0.3, min_outage=60.0, outage_sigma=500.0
        )
        tr = generate_trace(cfg, np.random.default_rng(2))
        # Rescaling can shrink lengths a little; allow a modest margin.
        assert tr.outage_lengths().min() > 20.0

    def test_cluster_traces_are_distinct(self):
        cfg = self._cfg(0.4)
        rng_factory = lambda i: np.random.default_rng(100 + i)
        traces = generate_cluster_traces(cfg, 8, rng_factory)
        assert len(traces) == 8
        starts = {t.intervals[0].start for t in traces}
        assert len(starts) > 1
        assert empirical_rate(traces) == pytest.approx(0.4, rel=0.05)

    @settings(max_examples=20, deadline=None)
    @given(
        rate=st.floats(min_value=0.05, max_value=0.7),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_property_generated_trace_is_valid_and_on_target(self, rate, seed):
        cfg = TraceConfig(unavailability_rate=rate)
        tr = generate_trace(cfg, np.random.default_rng(seed))
        # Constructor enforces sortedness/no overlap; rate within 10%.
        assert tr.unavailability_rate() == pytest.approx(rate, rel=0.10)
        # All intervals inside the window.
        for iv in tr:
            assert 0.0 <= iv.start < iv.end <= cfg.duration


class TestStats:
    def test_compute_stats_basics(self):
        traces = [
            AvailabilityTrace([(0.0, 50.0)], 100.0),
            AvailabilityTrace([(50.0, 100.0)], 100.0),
        ]
        s = compute_stats(traces, sample_interval=10.0)
        assert s.n_nodes == 2
        assert s.mean_unavailability == pytest.approx(0.5)
        # At any instant exactly one node is down.
        assert s.max_simultaneous_down_fraction == pytest.approx(0.5)
        assert s.min_simultaneous_down_fraction == pytest.approx(0.5)

    def test_stats_requires_common_duration(self):
        with pytest.raises(TraceError):
            compute_stats(
                [
                    AvailabilityTrace([], 100.0),
                    AvailabilityTrace([], 200.0),
                ]
            )

    def test_measured_unavailability_window(self):
        traces = [AvailabilityTrace([(0.0, 10.0)], 100.0)]
        assert measured_unavailability(traces, 0.0, 20.0) == pytest.approx(0.5)
        assert measured_unavailability(traces, 50.0, 100.0) == 0.0

    def test_measured_unavailability_is_p_estimate(self):
        """The NameNode's p estimate over interval I should approach the
        configured rate for many nodes."""
        cfg = TraceConfig(unavailability_rate=0.4)
        traces = [
            generate_trace(cfg, np.random.default_rng(i)) for i in range(30)
        ]
        p = measured_unavailability(traces, 0.0, cfg.duration)
        assert p == pytest.approx(0.4, abs=0.03)
