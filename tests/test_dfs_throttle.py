"""Tests for Algorithm 1 (sliding-window I/O throttling)."""

from __future__ import annotations

import pytest

from repro.config import DfsConfig
from repro.dfs import THROTTLED, UNTHROTTLED, ThrottleDetector, ThrottleService
from repro.net import FifoNetwork
from repro.simulation import Simulation


class TestDetectorStateMachine:
    def make(self, window=4, threshold=0.2):
        return ThrottleDetector(window, threshold)

    def fill(self, det, values):
        for v in values:
            det.observe(v)

    def test_starts_unthrottled(self):
        assert self.make().state == UNTHROTTLED

    def test_no_decision_before_window_fills(self):
        det = self.make(window=4)
        self.fill(det, [100, 100, 100])  # only 3 samples
        assert det.observe(101) == UNTHROTTLED  # first full-window check

    def test_small_rise_means_saturated(self):
        """bw rising but within (1+Tb): plateau -> throttled."""
        det = self.make(window=4, threshold=0.2)
        self.fill(det, [100, 100, 100, 100])
        assert det.observe(105) == THROTTLED  # 100 < 105 < 120

    def test_large_rise_is_healthy_rampup(self):
        det = self.make(window=4, threshold=0.2)
        self.fill(det, [100, 100, 100, 100])
        assert det.observe(150) == UNTHROTTLED  # 150 >= 120: still growing

    def test_release_requires_margin_drop(self):
        det = self.make(window=4, threshold=0.2)
        self.fill(det, [100, 100, 100, 100, 105])  # now throttled
        assert det.throttled
        # avg is now ~101.25; small dip stays throttled (hysteresis)...
        assert det.observe(100) == THROTTLED
        # ...but a big drop below (1-Tb)*avg releases.
        avg = (100 + 100 + 100 + 105) / 4  # window after the dip shifts
        assert det.observe(avg * 0.5) == UNTHROTTLED

    def test_oscillation_does_not_flap(self):
        """Alternating samples around the mean must not toggle state."""
        det = self.make(window=4, threshold=0.3)
        self.fill(det, [100, 100, 100, 100])
        states = [det.observe(v) for v in [102, 98, 102, 98, 102]]
        # It may throttle once (plateau detection) but never unthrottle
        # on the small dips.
        assert UNTHROTTLED not in states[1:] or THROTTLED not in states

    def test_transitions_counter(self):
        det = self.make(window=2, threshold=0.2)
        self.fill(det, [100, 100])
        det.observe(105)  # -> throttled
        det.observe(10)  # -> unthrottled
        assert det.transitions == 2

    def test_flat_positive_plateau_is_saturation(self):
        """Deterministic-sim deviation: exactly-equal positive samples
        mean a queue draining at capacity -> throttled."""
        det = self.make(window=2)
        self.fill(det, [100, 100])
        assert det.observe(100.0) == THROTTLED

    def test_flat_zero_plateau_stays_unthrottled(self):
        det = self.make(window=2)
        self.fill(det, [0.0, 0.0])
        assert det.observe(0.0) == UNTHROTTLED


class TestThrottleService:
    def _setup(self, sim):
        cfg = DfsConfig(throttle_window=3, throttle_sample_interval=1.0,
                        throttle_threshold=0.2)
        net = FifoNetwork(sim, disk_fraction=0.0)
        for i in range(4):
            net.register_node(i, disk_mbps=50.0, nic_mbps=10.0)
        released = []
        svc = ThrottleService(
            sim, net, [0, 1], cfg, on_unthrottled=released.append
        )
        return cfg, net, svc, released

    def test_sampling_derives_bandwidth_from_counters(self, sim):
        cfg, net, svc, _ = self._setup(sim)
        # Saturate node 0's NIC-in at 10 MB/s with a constant stream.
        for k in range(40):
            net.transfer(2, 0, 10.0)
        sim.run(until=20.0)
        assert svc.is_throttled(0) is True
        assert svc.is_throttled(1) is False
        assert svc.all_throttled() is False

    def test_all_throttled_when_every_dedicated_saturated(self, sim):
        cfg, net, svc, _ = self._setup(sim)
        for k in range(40):
            net.transfer(2, 0, 10.0)  # source 2 feeds dedicated node 0
            net.transfer(3, 1, 10.0)  # source 3 feeds dedicated node 1
        sim.run(until=20.0)
        assert svc.all_throttled() is True
        assert svc.unthrottled_nodes() == []

    def test_release_fires_callback(self, sim):
        cfg, net, svc, released = self._setup(sim)
        for k in range(15):
            net.transfer(2, 0, 10.0)  # 15 s of saturation, then idle
        sim.run(until=40.0)
        assert svc.is_throttled(0) is False
        assert 0 in released

    def test_idle_node_never_throttles(self, sim):
        cfg, net, svc, _ = self._setup(sim)
        sim.run(until=30.0)
        assert not svc.is_throttled(0) and not svc.is_throttled(1)

    def test_unknown_node_reported_unthrottled(self, sim):
        cfg, net, svc, _ = self._setup(sim)
        assert svc.is_throttled(99) is False
